"""Multi-tenant co-run scenarios: partitioning, tenant views, per-tenant
attribution, the single-tenant isolation bit-identity, and the baseline
correctness fixes that ride along (shared kind rule, configured async issue
cost, owned-slot striped allocation, speedup guard)."""

import math

import pytest

from repro.core import api
from repro.sim.config import ndp_2_5d
from repro.sim.memmap import AddressMap
from repro.sim.syncif import SyncUsageError
from repro.sim.system import NDPSystem
from repro.sim.tenancy import TenantView, derive_units
from repro.workloads.base import RunMetrics, run_workload
from repro.workloads.corun import CorunWorkload, TenantSpec, partition_cores
from repro.workloads.microbench import PrimitiveMicrobench

from repro.testing import ALL_MECHANISMS, SPIN_MECHANISMS, build_system


def _lock_bench(rounds=4, interval=60):
    return PrimitiveMicrobench("lock", interval, rounds=rounds)


def _barrier_bench(rounds=4, interval=60):
    return PrimitiveMicrobench("barrier", interval, rounds=rounds)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartitioning:
    def test_single_default_tenant_gets_everything(self, quad_config):
        system = build_system(quad_config)
        [(cores, units)] = partition_cores(
            system, [TenantSpec("only", _lock_bench)]
        )
        assert cores == system.cores
        assert units == tuple(range(quad_config.num_units))

    def test_unit_slices_take_whole_units(self, quad_config):
        system = build_system(quad_config)
        (a_cores, a_units), (b_cores, b_units) = partition_cores(system, [
            TenantSpec("a", _lock_bench, units=(0, 1)),
            TenantSpec("b", _lock_bench, units=(2, 3)),
        ])
        assert a_units == (0, 1) and b_units == (2, 3)
        assert {c.unit_id for c in a_cores} == {0, 1}
        assert {c.unit_id for c in b_cores} == {2, 3}
        assert len(a_cores) + len(b_cores) == len(system.cores)

    def test_core_counts_are_contiguous_and_rest_splits_evenly(self, quad_config):
        system = build_system(quad_config)
        (a, _), (b, _), (c, _) = partition_cores(system, [
            TenantSpec("a", _lock_bench, cores=5),
            TenantSpec("b", _lock_bench),
            TenantSpec("c", _lock_bench),
        ])
        total = len(system.cores)
        assert [x.core_id for x in a] == list(range(5))
        assert len(b) + len(c) == total - 5
        assert abs(len(b) - len(c)) <= 1
        # no overlap, full coverage
        ids = [x.core_id for x in a + b + c]
        assert sorted(ids) == list(range(total))

    def test_explicit_core_ids_take_exactly_those_cores(self, quad_config):
        system = build_system(quad_config)
        (a, a_units), (b, _) = partition_cores(system, [
            TenantSpec("a", _lock_bench, core_ids=(5, 6, 7)),
            TenantSpec("b", _lock_bench),
        ])
        assert [c.core_id for c in a] == [5, 6, 7]
        assert a_units == derive_units(a)
        assert 5 not in {c.core_id for c in b}

    def test_unknown_core_ids_rejected(self, tiny_config):
        system = build_system(tiny_config)
        with pytest.raises(ValueError, match="invalid core ids"):
            partition_cores(system, [
                TenantSpec("a", _lock_bench, core_ids=(999,)),
            ])

    def test_overlapping_units_rejected(self, quad_config):
        system = build_system(quad_config)
        with pytest.raises(ValueError, match="both claim"):
            partition_cores(system, [
                TenantSpec("a", _lock_bench, units=(0, 1)),
                TenantSpec("b", _lock_bench, units=(1, 2)),
            ])

    def test_oversubscription_rejected(self, tiny_config):
        system = build_system(tiny_config)
        with pytest.raises(ValueError, match="only"):
            partition_cores(system, [
                TenantSpec("a", _lock_bench, cores=len(system.cores) + 1),
            ])

    def test_units_and_cores_both_given_rejected(self):
        with pytest.raises(ValueError, match="at most one"):
            TenantSpec("a", _lock_bench, cores=3, units=(0,))

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CorunWorkload([TenantSpec("x", _lock_bench),
                           TenantSpec("x", _barrier_bench)])


# ----------------------------------------------------------------------
# Tenant views (logical remapping)
# ----------------------------------------------------------------------
class TestTenantView:
    def _view(self, system, units):
        tstats = system.stats.add_tenant("t")
        cores = [c for c in system.cores if c.unit_id in set(units)]
        return TenantView(system, tstats, cores, units)

    def test_logical_unit_remapping(self, quad_config):
        system = build_system(quad_config)
        view = self._view(system, (2, 3))
        assert view.config.num_units == 2
        assert [c.unit_id for c in view.cores] == sorted(
            c.unit_id - 2 for c in view.physical_cores
        )
        # allocations in logical unit 0 land in physical unit 2's memory
        addr = view.addrmap.alloc(0, 64)
        assert system.addrmap.unit_of(addr) == 2

    def test_syncvar_round_robin_over_tenant_units(self, quad_config):
        system = build_system(quad_config)
        view = self._view(system, (1, 3))
        vars_ = [view.create_syncvar() for _ in range(4)]
        assert [v.unit for v in vars_] == [1, 3, 1, 3]
        assert all(v.owner is view.tstats for v in vars_)

    def test_whole_machine_view_is_identity(self, quad_config):
        system = build_system(quad_config)
        view = self._view(system, tuple(range(quad_config.num_units)))
        assert view.config is system.config
        assert [c.unit_id for c in view.cores] == [
            c.unit_id for c in system.cores
        ]
        assert [c.core_id for c in view.cores] == [
            c.core_id for c in system.cores
        ]

    def test_striped_array_stays_in_tenant_units(self, quad_config):
        system = build_system(quad_config)
        view = self._view(system, (1, 2))
        addrs = view.addrmap.alloc_striped_array(5, 8)
        assert [system.addrmap.unit_of(a) for a in addrs] == [1, 2, 1, 2, 1]

    def test_foreign_address_rejected(self, quad_config):
        system = build_system(quad_config)
        view = self._view(system, (0, 1))
        foreign = system.addrmap.alloc(3, 64)
        with pytest.raises(ValueError, match="outside"):
            view.addrmap.unit_of(foreign)

    def test_views_never_run_programs(self, quad_config):
        system = build_system(quad_config)
        view = self._view(system, (0,))
        with pytest.raises(RuntimeError, match="never run"):
            view.run_programs({})

    def test_derive_units_is_ordered_and_distinct(self, quad_config):
        system = build_system(quad_config)
        assert derive_units(system.cores) == tuple(
            range(quad_config.num_units)
        )


# ----------------------------------------------------------------------
# Isolation: one tenant over the whole machine == the plain run
# ----------------------------------------------------------------------
class TestIsolation:
    #: covers hardware (syncron), software-server (hier/central), ideal,
    #: and both spin baselines — well past the >=3 the issue asks for.
    MECHANISMS = ("syncron", "hier", "central", "ideal", "rmw_spin")

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_single_tenant_is_bit_identical(self, tiny_config, mechanism):
        solo = run_workload(_lock_bench, tiny_config, mechanism)
        corun = run_workload(
            lambda: CorunWorkload([TenantSpec("only", _lock_bench)]),
            tiny_config, mechanism,
        )
        assert corun.cycles == solo.cycles
        assert corun.energy == solo.energy
        assert corun.bytes_inside_units == solo.bytes_inside_units
        assert corun.bytes_across_units == solo.bytes_across_units
        assert corun.sync_requests == solo.sync_requests
        # and the whole-machine tenant is attributed everything
        assert corun.stats["tenant.only.cycles"] == solo.cycles
        assert corun.stats["tenant.only.sync_requests"] == solo.sync_requests


# ----------------------------------------------------------------------
# Two-tenant co-runs: attribution and summaries
# ----------------------------------------------------------------------
class TestCorunAttribution:
    def _corun(self, config, mechanism="syncron"):
        workload = CorunWorkload([
            TenantSpec("locky", _lock_bench, units=(0,)),
            TenantSpec("barry", _barrier_bench, units=(1,)),
        ])
        system = NDPSystem(config, mechanism=mechanism)
        return workload.run(system), workload, system

    def test_per_tenant_counters_present_and_bounded(self, tiny_config):
        metrics, workload, system = self._corun(tiny_config)
        stats = metrics.stats
        for name in ("locky", "barry"):
            assert stats[f"tenant.{name}.cycles"] > 0
            assert stats[f"tenant.{name}.sync_requests"] > 0
        # attribution never exceeds the global counters
        for field in ("sync_requests", "bytes_inside_units",
                      "bytes_across_units"):
            total = sum(
                stats[f"tenant.{t}.{field}"] for t in ("locky", "barry")
            )
            global_field = ("sync_requests_total" if field == "sync_requests"
                            else field)
            assert total <= stats[global_field]

    def test_makespan_and_fairness_summary(self, tiny_config):
        metrics, workload, system = self._corun(tiny_config)
        stats = metrics.stats
        per_tenant = [stats["tenant.locky.cycles"], stats["tenant.barry.cycles"]]
        assert stats["tenant_summary.makespan"] == max(per_tenant)
        assert metrics.cycles == max(per_tenant)
        expected = min(per_tenant) / max(per_tenant)
        assert stats["tenant_summary.fairness"] == pytest.approx(expected)

    def test_tenant_vars_confined_to_their_units(self, tiny_config):
        _metrics, workload, system = self._corun(tiny_config)
        locky, barry = workload.views
        assert set(derive_units(locky.physical_cores)) == {0}
        assert set(derive_units(barry.physical_cores)) == {1}

    def test_corun_instances_are_single_use(self, tiny_config):
        _metrics, workload, system = self._corun(tiny_config)
        with pytest.raises(RuntimeError, match="single-use"):
            workload.build(system)


# ----------------------------------------------------------------------
# Spec/registry/cache integration
# ----------------------------------------------------------------------
class TestCorunSpecs:
    TENANTS = [
        {"name": "locky", "workload": "primitive",
         "args": {"primitive": "lock", "interval": 60, "rounds": 3},
         "units": [0]},
        {"name": "barry", "workload": "primitive",
         "args": {"primitive": "barrier", "interval": 60, "rounds": 3},
         "units": [1]},
    ]

    def _spec(self, mechanism="syncron"):
        from repro.harness.specs import RunSpec

        return RunSpec.make(
            "corun", mechanism, args={"tenants": self.TENANTS},
            overrides={"num_units": 2, "cores_per_unit": 4,
                       "client_cores_per_unit": 3},
        )

    def test_spec_hashes_stably_and_builds(self):
        spec = self._spec()
        assert spec.cache_key() == self._spec().cache_key()
        workload = spec.build_workload()
        assert isinstance(workload, CorunWorkload)
        assert [t.name for t in workload.tenants] == ["locky", "barry"]
        assert workload.tenants[0].units == (0,)

    def test_tenant_metrics_survive_the_result_cache(self, tmp_path):
        from repro.harness.runner import STATS, run_specs

        spec = self._spec()
        cold = run_specs([spec], cache=True, cache_dir=str(tmp_path))[0]
        before = STATS.executed
        warm = run_specs([spec], cache=True, cache_dir=str(tmp_path))[0]
        assert STATS.executed == before  # zero simulations on the warm run
        assert isinstance(warm, RunMetrics)
        assert warm.cycles == cold.cycles
        for key, value in cold.stats.items():
            assert warm.stats[key] == value
        assert any(k.startswith("tenant.locky.") for k in warm.stats)

    def test_unknown_tenant_workload_rejected(self):
        from repro.harness.specs import build_corun

        with pytest.raises(ValueError, match="unknown workload"):
            build_corun([{"workload": "nope"}])

    def test_corun_does_not_nest(self):
        from repro.harness.specs import build_corun

        with pytest.raises(ValueError, match="nest"):
            build_corun([{"workload": "corun"}])


# ----------------------------------------------------------------------
# Interference experiment (small scale)
# ----------------------------------------------------------------------
class TestInterferenceExperiment:
    def test_emits_slowdown_vs_alone_per_cell(self):
        from repro.harness.experiments import interference

        rows = interference(
            groups=[("lock", "barrier")],
            mechanisms=("central", "syncron"),
            topologies=("all_to_all", "ring"),
            interval=60, rounds=2,
            base_overrides={"num_units": 2, "cores_per_unit": 4,
                            "client_cores_per_unit": 3},
        )
        assert len(rows) == 4  # 1 group x 2 fabrics x 2 mechanisms
        for row in rows:
            assert row["pair"] == "lock+barrier"
            assert row["lock_slowdown"] >= 1.0 or math.isclose(
                row["lock_slowdown"], 1.0)
            assert row["barrier_slowdown"] > 0
            assert 0 < row["fairness"] <= 1.0
            assert row["makespan"] >= max(row["lock_cycles"],
                                          row["barrier_cycles"])

    def test_core_split_pins_solo_baseline_to_the_corun_slice(self):
        """The 'alone' run of a core-granular tenant must occupy exactly the
        cores it had in the co-run (not a fresh slice from core 0)."""
        from repro.harness.experiments import interference

        rows = interference(
            groups=[("lock", "barrier")],
            mechanisms=("syncron",),
            topologies=("all_to_all",),
            interval=60, rounds=2, core_split=(2, 4),
            base_overrides={"num_units": 2, "cores_per_unit": 4,
                            "client_cores_per_unit": 3},
        )
        [row] = rows
        # both tenants share unit 0 -> the lock tenant sees real slowdown,
        # and its baseline ran on its own cores (0,1), not somewhere else
        assert row["lock_slowdown"] >= 1.0
        assert row["barrier_slowdown"] >= 1.0
        assert row["lock_alone_cycles"] > 0
        # the property itself, pinned at the partitioner level: a solo
        # tenant with the co-run's explicit core ids occupies exactly the
        # same cores (a count-based solo slice would start at core 0)
        cfg = ndp_2_5d(num_units=2, cores_per_unit=4,
                       client_cores_per_unit=3)
        co = partition_cores(build_system(cfg), [
            TenantSpec("lock", _lock_bench, core_ids=tuple(range(0, 2))),
            TenantSpec("barrier", _barrier_bench, core_ids=tuple(range(2, 6))),
        ])
        solo = partition_cores(build_system(cfg), [
            TenantSpec("barrier", _barrier_bench, core_ids=tuple(range(2, 6))),
        ])
        assert ([c.core_id for c in solo[0][0]]
                == [c.core_id for c in co[1][0]] == [2, 3, 4, 5])

    def test_isolation_check_rows(self):
        from repro.harness.experiments import isolation_check

        rows = isolation_check(
            descs=("lock",), mechanisms=("syncron", "ideal"),
            interval=60, rounds=2,
            base_overrides={"num_units": 2, "cores_per_unit": 4,
                            "client_cores_per_unit": 3},
        )
        assert [r["mechanism"] for r in rows] == ["syncron", "ideal"]
        assert all(r["identical"] for r in rows)


# ----------------------------------------------------------------------
# Satellite: the single-use kind rule holds under EVERY mechanism
# ----------------------------------------------------------------------
class TestKindRuleEverywhere:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS + SPIN_MECHANISMS)
    def test_lock_then_barrier_raises(self, tiny_config, mechanism):
        """Regression: bakery/rmw_spin silently accepted a variable used as
        both lock and barrier while SynCron raised; the check now lives in
        the shared mechanism layer."""
        system = build_system(tiny_config, mechanism)
        var = system.create_syncvar(name="mixed")

        def worker():
            yield api.lock_acquire(var)
            yield api.lock_release(var)
            yield api.barrier_wait_across_units(var, 1)

        with pytest.raises(SyncUsageError, match="used as lock"):
            system.run_programs({0: worker()})


# ----------------------------------------------------------------------
# Satellite: configured async issue cost (no fresh lambda per release)
# ----------------------------------------------------------------------
class TestAsyncIssueCost:
    @pytest.mark.parametrize("mechanism",
                             ("syncron", "ideal", "bakery", "rmw_spin"))
    def test_request_async_returns_configured_cost(self, mechanism):
        config = ndp_2_5d(num_units=2, cores_per_unit=4,
                          client_cores_per_unit=3, async_issue_cycles=7)
        system = NDPSystem(config, mechanism=mechanism)
        lock = system.create_syncvar()
        core = system.cores[0]
        system.mechanism.request(core, "lock_acquire", lock, 0, lambda: None)
        system.sim.run()
        cost = system.mechanism.request_async(core, "lock_release", lock, 0)
        assert cost == 7

    def test_invalid_issue_cost_rejected(self):
        with pytest.raises(ValueError, match="async issue"):
            ndp_2_5d(async_issue_cycles=0).validate()


# ----------------------------------------------------------------------
# Satellite: owned-slot striped allocation + speedup guard
# ----------------------------------------------------------------------
class TestStripedAllocation:
    def test_small_array_leaves_trailing_units_untouched(self):
        amap = AddressMap(4, 1 << 20)
        addrs = amap.alloc_striped_array(2, 8)
        assert [amap.unit_of(a) for a in addrs] == [0, 1]
        assert amap.bytes_used(2) == 0 and amap.bytes_used(3) == 0

    def test_uneven_array_allocates_exact_owned_slots(self):
        amap = AddressMap(4, 1 << 20)
        addrs = amap.alloc_striped_array(5, 8)
        assert [amap.unit_of(a) for a in addrs] == [0, 1, 2, 3, 0]
        assert amap.bytes_used(0) == 16  # two slots
        assert amap.bytes_used(1) == 8   # one slot
        assert len(set(addrs)) == 5

    def test_empty_array_rejected(self):
        amap = AddressMap(4, 1 << 20)
        with pytest.raises(ValueError, match="positive"):
            amap.alloc_striped_array(0)


class TestSpeedupGuard:
    def _metrics(self, cycles):
        from repro.sim.energy import EnergyBreakdown

        return RunMetrics(
            mechanism="syncron", cycles=cycles, operations=1,
            energy=EnergyBreakdown(0.0, 0.0, 0.0), bytes_inside_units=0,
            bytes_across_units=0, sync_requests=0, overflow_request_pct=0.0,
            st_occupancy_max_pct=0.0, st_occupancy_avg_pct=0.0, stats={},
        )

    def test_zero_cycle_baseline_is_nan_not_zero(self):
        assert math.isnan(self._metrics(100).speedup_over(self._metrics(0)))

    def test_two_empty_runs_compare_equal(self):
        assert self._metrics(0).speedup_over(self._metrics(0)) == 1.0

    def test_empty_run_over_real_baseline_is_inf(self):
        assert self._metrics(0).speedup_over(self._metrics(50)) == math.inf

    def test_normal_ratio_unchanged(self):
        assert self._metrics(50).speedup_over(self._metrics(100)) == 2.0
