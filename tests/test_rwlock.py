"""Reader-writer lock semantics across every mechanism.

The rw lock is SynCron's generality extension beyond the paper's four
primitives (LCU supports reader-writer locks natively, Sec. 4.5).  Writer
exclusivity and reader sharing are checked inside the simulated programs;
the SE-protocol scheme additionally guarantees fair FIFO ordering (a queued
writer blocks later readers), which the spin baselines deliberately do not.
"""

import pytest

from repro.core import api
from repro.core.protocol import ProtocolError
from repro.sim.program import Compute, RW_READ_ACQUIRE, RW_WRITE_ACQUIRE
from repro.sync.logic import LogicError, SyncLogic

from repro.testing import ALL_MECHANISMS, SPIN_MECHANISMS, build_system

RW_MECHANISMS = ALL_MECHANISMS + SPIN_MECHANISMS


def run_rw_workload(system, rwlock, reader_every=3, rounds=5, cs=15):
    """Mixed readers/writers on one rw lock; returns the observation dict."""
    state = {
        "readers": 0, "writers": 0, "max_readers": 0,
        "violations": 0, "reads": 0, "writes": 0,
    }

    def reader():
        for _ in range(rounds):
            yield api.rw_read_acquire(rwlock)
            state["readers"] += 1
            state["max_readers"] = max(state["max_readers"], state["readers"])
            if state["writers"]:
                state["violations"] += 1
            yield Compute(cs)
            state["readers"] -= 1
            state["reads"] += 1
            yield api.rw_read_release(rwlock)

    def writer():
        for _ in range(rounds):
            yield api.rw_write_acquire(rwlock)
            state["writers"] += 1
            if state["writers"] > 1 or state["readers"]:
                state["violations"] += 1
            yield Compute(cs)
            state["writers"] -= 1
            state["writes"] += 1
            yield api.rw_write_release(rwlock)

    programs = {}
    for i, core in enumerate(system.cores):
        is_writer = i % reader_every == 0
        programs[core.core_id] = writer() if is_writer else reader()
    system.run_programs(programs)
    return state


@pytest.mark.parametrize("mechanism", RW_MECHANISMS)
class TestRWLockAcrossMechanisms:
    def test_writer_exclusive_readers_shared(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        rwlock = system.create_syncvar(name="RW")
        state = run_rw_workload(system, rwlock)
        assert state["violations"] == 0
        n = len(system.cores)
        writers = (n + 2) // 3
        assert state["writes"] == 5 * writers
        assert state["reads"] == 5 * (n - writers)

    def test_readers_actually_share(self, tiny_config, mechanism):
        """With reader-only load and long critical sections, concurrency
        must exceed one (the whole point of an rw lock)."""
        system = build_system(tiny_config, mechanism)
        rwlock = system.create_syncvar(name="RW")
        state = {"readers": 0, "max_readers": 0}
        # The bakery's O(N)-loads acquire takes thousands of cycles, so its
        # critical section must be long enough for overlap to be observable.
        section = 60000 if mechanism == "bakery" else 4000

        def reader():
            for _ in range(4):
                yield api.rw_read_acquire(rwlock)
                state["readers"] += 1
                state["max_readers"] = max(state["max_readers"], state["readers"])
                yield Compute(section)
                state["readers"] -= 1
                yield api.rw_read_release(rwlock)

        system.run_programs({c.core_id: reader() for c in system.cores})
        assert state["max_readers"] > 1

    def test_remote_home_unit(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        rwlock = system.create_syncvar(unit=1)
        state = run_rw_workload(system, rwlock, rounds=3)
        assert state["violations"] == 0

    def test_write_only_degenerates_to_mutex(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        rwlock = system.create_syncvar(name="RW")
        state = {"inside": 0, "max_inside": 0, "count": 0}

        def writer():
            for _ in range(4):
                yield api.rw_write_acquire(rwlock)
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"], state["inside"])
                state["count"] += 1
                yield Compute(10)
                state["inside"] -= 1
                yield api.rw_write_release(rwlock)

        system.run_programs({c.core_id: writer() for c in system.cores})
        assert state["max_inside"] == 1
        assert state["count"] == 4 * len(system.cores)


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
class TestRWLockFairness:
    def test_writer_not_starved_by_reader_stream(self, tiny_config, mechanism):
        """Fair FIFO: a writer that queues behind active readers must be
        granted before readers that request after it.  (The spin baselines
        are deliberately reader-preferring, hence ALL_MECHANISMS only.)"""
        system = build_system(tiny_config, mechanism)
        rwlock = system.create_syncvar(name="RW")
        progress = {"writes": 0, "reads_after_first_write": None, "reads": 0}

        def reader():
            for _ in range(12):
                yield api.rw_read_acquire(rwlock)
                progress["reads"] += 1
                yield Compute(300)
                yield api.rw_read_release(rwlock)

        def writer():
            yield Compute(900)  # let readers establish a steady stream
            yield api.rw_write_acquire(rwlock)
            progress["writes"] += 1
            progress["reads_after_first_write"] = progress["reads"]
            yield Compute(50)
            yield api.rw_write_release(rwlock)

        cores = system.cores
        programs = {c.core_id: reader() for c in cores[:-1]}
        programs[cores[-1].core_id] = writer()
        system.run_programs(programs)
        assert progress["writes"] == 1
        # The writer won before the reader stream drained completely.
        assert progress["reads_after_first_write"] < 12 * (len(cores) - 1)


class TestRWLockLogic:
    """Unit tests of the timing-free reference semantics."""

    class _Var:
        def __init__(self, addr=0x1000, name="rw"):
            self.addr = addr
            self.name = name

    def test_concurrent_readers(self):
        logic, var = SyncLogic(), self._Var()
        assert logic.apply(0, RW_READ_ACQUIRE, var) == [0]
        assert logic.apply(1, RW_READ_ACQUIRE, var) == [1]
        assert logic.rw_readers(var) == 2

    def test_writer_waits_for_readers(self):
        logic, var = SyncLogic(), self._Var()
        logic.apply(0, RW_READ_ACQUIRE, var)
        logic.apply(1, RW_READ_ACQUIRE, var)
        assert logic.apply(2, RW_WRITE_ACQUIRE, var) == []
        assert logic.apply(0, "rw_read_release", var) == []
        assert logic.apply(1, "rw_read_release", var) == [2]
        assert logic.rw_writer(var) == 2

    def test_queued_writer_blocks_later_readers(self):
        logic, var = SyncLogic(), self._Var()
        logic.apply(0, RW_READ_ACQUIRE, var)
        assert logic.apply(1, RW_WRITE_ACQUIRE, var) == []
        # Reader 2 arrives after writer 1 queued: it must wait.
        assert logic.apply(2, RW_READ_ACQUIRE, var) == []
        assert logic.apply(0, "rw_read_release", var) == [1]
        assert logic.apply(1, "rw_write_release", var) == [2]

    def test_release_wakes_reader_batch(self):
        logic, var = SyncLogic(), self._Var()
        logic.apply(0, RW_WRITE_ACQUIRE, var)
        logic.apply(1, RW_READ_ACQUIRE, var)
        logic.apply(2, RW_READ_ACQUIRE, var)
        logic.apply(3, RW_READ_ACQUIRE, var)
        woken = logic.apply(0, "rw_write_release", var)
        assert woken == [1, 2, 3]
        assert logic.rw_readers(var) == 3

    def test_read_release_without_reader_raises(self):
        logic, var = SyncLogic(), self._Var()
        with pytest.raises(LogicError):
            logic.apply(0, "rw_read_release", var)

    def test_write_release_by_non_owner_raises(self):
        logic, var = SyncLogic(), self._Var()
        logic.apply(0, RW_WRITE_ACQUIRE, var)
        with pytest.raises(LogicError):
            logic.apply(1, "rw_write_release", var)

    def test_kind_mismatch_raises(self):
        logic, var = SyncLogic(), self._Var()
        logic.apply(0, "lock_acquire", var)
        with pytest.raises(LogicError):
            logic.apply(1, RW_READ_ACQUIRE, var)

    def test_waiters_counts_rw_queue(self):
        logic, var = SyncLogic(), self._Var()
        logic.apply(0, RW_WRITE_ACQUIRE, var)
        logic.apply(1, RW_READ_ACQUIRE, var)
        logic.apply(2, RW_WRITE_ACQUIRE, var)
        assert logic.waiters(var) == 2


class TestRWLockProtocolErrors:
    """Failure injection on the SE protocol path."""

    def test_read_release_without_acquire_raises(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        rwlock = system.create_syncvar(unit=0, name="RW")

        def bad_worker():
            yield api.rw_read_release(rwlock)

        core = system.cores_in_unit(0)[0]
        with pytest.raises(ProtocolError):
            system.run_programs({core.core_id: bad_worker()})

    def test_write_release_by_non_owner_raises(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        rwlock = system.create_syncvar(unit=0, name="RW")
        cores = system.cores_in_unit(0)

        def owner():
            yield api.rw_write_acquire(rwlock)
            yield Compute(5000)
            yield api.rw_write_release(rwlock)

        def impostor():
            yield Compute(500)
            yield api.rw_write_release(rwlock)

        with pytest.raises(ProtocolError):
            system.run_programs(
                {cores[0].core_id: owner(), cores[1].core_id: impostor()}
            )

    def test_mixing_rwlock_with_lock_ops_raises(self, tiny_config):
        # The single-use rule is enforced by the shared admission check
        # (SyncUsageError, of which ProtocolError is a subclass) for every
        # mechanism, not just SynCron's engine.
        from repro.sim.syncif import SyncUsageError

        system = build_system(tiny_config, "syncron")
        var = system.create_syncvar(name="X")

        def worker():
            yield api.rw_write_acquire(var)
            yield api.lock_release(var)

        core = system.cores[0]
        with pytest.raises(SyncUsageError):
            system.run_programs({core.core_id: worker()})


class TestRWLockSynCronInternals:
    def test_st_entries_drain_after_quiescence(self, quad_config):
        system = build_system(quad_config, "syncron")
        rwlock = system.create_syncvar(name="RW")
        state = run_rw_workload(system, rwlock, rounds=4)
        assert state["violations"] == 0
        for se in system.mechanism.ses:
            assert se.st.occupied == 0
            assert len(se.store) == 0

    def test_master_coordination_is_one_level(self, quad_config):
        """Every rw request from a remote unit crosses to the master once;
        there is no per-unit aggregation (unlike locks)."""
        system = build_system(quad_config, "syncron")
        rwlock = system.create_syncvar(unit=0, name="RW")
        cores = system.cores_in_unit(1)

        def reader():
            for _ in range(5):
                yield api.rw_read_acquire(rwlock)
                yield api.rw_read_release(rwlock)

        system.run_programs({c.core_id: reader() for c in cores})
        # acquire+release forwarded per op, plus per-grant responses.
        assert system.stats.sync_messages_global >= 2 * 5 * len(cores)

    def test_overflowed_master_services_rw_via_memory(self, tiny_config):
        """With a 1-entry ST filled by another variable, rw requests at the
        master take the syncronVar memory path and still work."""
        config = tiny_config.with_(st_entries=1)
        system = build_system(config, "syncron")
        blocker = system.create_syncvar(unit=0, name="BL")
        rwlock = system.create_syncvar(unit=0, name="RW")
        cores = system.cores_in_unit(0)
        state = {"reads": 0}

        def holder():
            # Keeps the blocker lock (and its ST entry) live the whole run.
            yield api.lock_acquire(blocker)
            yield Compute(20000)
            yield api.lock_release(blocker)

        def reader():
            for _ in range(3):
                yield api.rw_read_acquire(rwlock)
                state["reads"] += 1
                yield api.rw_read_release(rwlock)

        programs = {cores[0].core_id: holder()}
        for core in cores[1:]:
            programs[core.core_id] = reader()
        system.run_programs(programs)
        assert state["reads"] == 3 * (len(cores) - 1)
        assert system.stats.st_overflow_requests > 0
