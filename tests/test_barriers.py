"""Barrier-primitive semantics across mechanisms and modes."""

import pytest

from repro.core import api
from repro.sim.program import Compute

from repro.testing import ALL_MECHANISMS, build_system


def run_phased_barrier(system, barrier, phases, participants=None):
    """Each core counts per-phase arrivals; returns the phase log.

    The invariant "no core enters phase p+1 before all arrive at p" is
    checked in-program: when a core *leaves* the barrier, every participant
    must already have arrived at that phase.
    """
    cores = system.cores if participants is None else participants
    n = len(cores)
    arrived = [0] * phases
    departed = [0] * phases

    def worker(core):
        for phase in range(phases):
            yield Compute(1 + core.core_id % 5)
            arrived[phase] += 1
            yield api.barrier_wait_across_units(barrier, n)
            assert arrived[phase] == n, (
                f"core {core.core_id} left phase {phase} early"
            )
            departed[phase] += 1

    system.run_programs({c.core_id: worker(c) for c in cores})
    return arrived, departed


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
class TestBarrierAcrossMechanisms:
    def test_full_barrier_multiple_phases(self, quad_config, mechanism):
        system = build_system(quad_config, mechanism)
        barrier = system.create_syncvar(name="B")
        n = len(system.cores)
        arrived, departed = run_phased_barrier(system, barrier, phases=4)
        assert arrived == [n] * 4
        assert departed == [n] * 4

    def test_partial_barrier_one_level_mode(self, quad_config, mechanism):
        """Fewer participants than total clients: SynCron's one-level path."""
        system = build_system(quad_config, mechanism)
        barrier = system.create_syncvar(name="B")
        participants = system.cores[: len(system.cores) // 2]
        arrived, departed = run_phased_barrier(
            system, barrier, phases=3, participants=participants
        )
        assert arrived == [len(participants)] * 3


class TestWithinUnitBarrier:
    @pytest.mark.parametrize("mechanism", ("syncron", "central", "hier", "ideal"))
    def test_units_barrier_independently(self, quad_config, mechanism):
        system = build_system(quad_config, mechanism)
        bars = {u: system.create_syncvar(unit=u) for u in range(4)}
        per_unit = quad_config.client_cores_per_unit
        log = {u: 0 for u in range(4)}

        def worker(core):
            for _ in range(3):
                yield Compute(2)
                yield api.barrier_wait_within_unit(bars[core.unit_id], per_unit)
            log[core.unit_id] += 1

        system.run_programs({c.core_id: worker(c) for c in system.cores})
        assert all(count == per_unit for count in log.values())

    def test_within_unit_barrier_sends_no_global_messages(self, quad_config):
        system = build_system(quad_config, "syncron")
        bars = {u: system.create_syncvar(unit=u) for u in range(4)}
        per_unit = quad_config.client_cores_per_unit

        def worker(core):
            for _ in range(3):
                yield api.barrier_wait_within_unit(bars[core.unit_id], per_unit)

        system.run_programs({c.core_id: worker(c) for c in system.cores})
        assert system.stats.sync_messages_global == 0


class TestSynCronBarrierInternals:
    def test_hierarchical_barrier_is_one_message_per_unit(self, quad_config):
        """Full-system barrier: each remote SE sends one aggregated wait and
        receives one departure (Sec. 3.2), so global messages per phase is
        2*(units-1)."""
        system = build_system(quad_config, "syncron")
        barrier = system.create_syncvar(unit=0)
        n = len(system.cores)
        phases = 5

        def worker():
            for _ in range(phases):
                yield api.barrier_wait_across_units(barrier, n)

        system.run_programs({c.core_id: worker() for c in system.cores})
        expected = 2 * (quad_config.num_units - 1) * phases
        assert system.stats.sync_messages_global == expected

    def test_barrier_state_cleared_after_each_phase(self, quad_config):
        system = build_system(quad_config, "syncron")
        barrier = system.create_syncvar(unit=0)
        n = len(system.cores)

        def worker():
            for _ in range(2):
                yield api.barrier_wait_across_units(barrier, n)

        system.run_programs({c.core_id: worker() for c in system.cores})
        for se in system.mechanism.ses:
            assert se.st.occupied == 0

    def test_single_core_barrier_is_immediate(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        barrier = system.create_syncvar()

        def worker():
            yield api.barrier_wait_across_units(barrier, 1)

        cycles = system.run_programs({0: worker()})
        assert cycles < 500  # a couple of message hops, no waiting

    def test_zero_participants_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            api.barrier_wait_across_units(tiny_system.create_syncvar(), 0)
