"""Hardware thread contexts per core (Sec. 4 SMT note).

The paper says SynCron supports SMT cores by giving each hardware thread
context its own waiting-list bit.  Our model adds the core-side half: the
contexts share the physical core's in-order pipeline (1 issue per cycle)
and its L1, while memory latency and synchronization waits overlap — the
latency-hiding SMT exists for.
"""

import pytest

from repro.core import api
from repro.sim.config import ndp_2_5d
from repro.sim.program import Compute, Load, RmwOp, batch
from repro.sim.smt import IssuePort
from repro.sim.system import NDPSystem


def smt_config(threads: int, **overrides):
    return ndp_2_5d(
        num_units=2, cores_per_unit=3, client_cores_per_unit=2,
        threads_per_core=threads, **overrides,
    )


class TestIssuePort:
    def test_sequential_reservations_chain(self):
        port = IssuePort()
        assert port.reserve(0, 5) == 0
        assert port.reserve(0, 3) == 5
        assert port.reserve(20, 1) == 20

    def test_wait_time(self):
        port = IssuePort()
        port.reserve(0, 10)
        assert port.wait_time(4) == 6
        assert port.wait_time(15) == 0

    def test_issue_counter(self):
        port = IssuePort()
        for _ in range(3):
            port.reserve(0, 1)
        assert port.issues == 3


class TestTopology:
    def test_context_count(self):
        system = NDPSystem(smt_config(2), mechanism="syncron")
        assert len(system.cores) == 2 * 2 * 2  # units x cores x contexts

    def test_context_ids_unique_and_dense(self):
        system = NDPSystem(smt_config(3), mechanism="syncron")
        ids = [core.core_id for core in system.cores]
        assert ids == list(range(len(system.cores)))
        per_unit = {}
        for core in system.cores:
            per_unit.setdefault(core.unit_id, []).append(core.local_id)
        for locals_ in per_unit.values():
            assert sorted(locals_) == list(range(len(locals_)))

    def test_contexts_share_l1_and_port(self):
        system = NDPSystem(smt_config(2), mechanism="syncron")
        first, second = system.cores[0], system.cores[1]
        assert first.l1 is second.l1
        assert first.port is second.port
        third = system.cores[2]
        assert third.l1 is not first.l1

    def test_single_thread_has_no_port(self):
        system = NDPSystem(smt_config(1), mechanism="syncron")
        assert all(core.port is None for core in system.cores)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            smt_config(0).validate()


class TestTimingSemantics:
    def test_single_context_timing_unchanged_by_port_machinery(self):
        """threads_per_core=1 must be bit-identical to the original model."""
        def run(threads):
            system = NDPSystem(smt_config(threads), mechanism="syncron")
            lock = system.create_syncvar(unit=0)

            def worker():
                for _ in range(4):
                    yield api.lock_acquire(lock)
                    yield Compute(10)
                    yield api.lock_release(lock)

            # Only one context per physical slot participates, so the SMT
            # system runs the same program set on the same resources.
            participants = [
                core for core in system.cores
                if core.local_id % threads == 0
            ]
            return system.run_programs(
                {c.core_id: worker() for c in participants}
            )

        assert run(1) == run(2)

    def test_compute_serializes_on_shared_pipeline(self):
        """Two pure-compute contexts on one core take twice as long."""
        system = NDPSystem(smt_config(2), mechanism="ideal")
        first, second = system.cores[0], system.cores[1]

        def worker():
            yield Compute(1000)

        makespan = system.run_programs(
            {first.core_id: worker(), second.core_id: worker()}
        )
        assert makespan >= 2000

    def test_memory_latency_hides_behind_sibling_loads(self):
        """Two memory-bound contexts overlap their long-latency loads: each
        load needs one issue cycle, the ~hundreds of wait cycles run
        off-port, so the pair costs far less than twice one stream."""
        def memory_worker(system):
            remote = system.addrmap.alloc(unit=1, nbytes=8)

            def worker():
                for _ in range(50):
                    yield Load(remote, cacheable=False)

            return worker()

        solo = NDPSystem(smt_config(2), mechanism="ideal")
        alone = solo.run_programs(
            {solo.cores[0].core_id: memory_worker(solo)}
        )

        pair = NDPSystem(smt_config(2), mechanism="ideal")
        makespan = pair.run_programs({
            pair.cores[0].core_id: memory_worker(pair),
            pair.cores[1].core_id: memory_worker(pair),
        })
        # Near-perfect overlap: well under 1.5x one stream (serial would
        # be ~2x).
        assert makespan < 1.5 * alone

    def test_sync_wait_frees_the_pipeline(self):
        """While context A waits for a lock held remotely, context B's
        compute stream proceeds."""
        config = smt_config(2)
        system = NDPSystem(config, mechanism="syncron")
        lock = system.create_syncvar(unit=1)
        a, b = system.cores[0], system.cores[1]
        order = []

        def locker():
            yield api.lock_acquire(lock)
            yield Compute(4000)
            order.append("locker_done")
            yield api.lock_release(lock)

        def blocked_then_compute():
            yield api.lock_acquire(lock)
            order.append("second_acquire")
            yield api.lock_release(lock)

        def background():
            yield Compute(500)
            order.append("background_done")

        remote = system.cores_in_unit(1)[0]
        makespan = system.run_programs({
            remote.core_id: locker(),
            a.core_id: blocked_then_compute(),
            b.core_id: background(),
        })
        # b finished its compute while a was parked on the lock.
        assert order.index("background_done") < order.index("second_acquire")
        assert makespan > 4000

    def test_batch_reserves_issue_slots(self):
        system = NDPSystem(smt_config(2), mechanism="ideal")
        first, second = system.cores[0], system.cores[1]
        addr = system.addrmap.alloc(unit=0, nbytes=64)

        def worker():
            yield batch(Compute(5), Load(addr), Compute(5))

        system.run_programs(
            {first.core_id: worker(), second.core_id: worker()}
        )
        assert first.port.issues >= 2


class TestSynchronizationAcrossContexts:
    @pytest.mark.parametrize("mechanism", ("syncron", "central", "ideal"))
    def test_mutual_exclusion_between_sibling_contexts(self, mechanism):
        system = NDPSystem(smt_config(2), mechanism=mechanism)
        lock = system.create_syncvar()
        state = {"inside": 0, "max": 0, "count": 0}

        def worker():
            for _ in range(5):
                yield api.lock_acquire(lock)
                state["inside"] += 1
                state["max"] = max(state["max"], state["inside"])
                state["count"] += 1
                yield Compute(10)
                state["inside"] -= 1
                yield api.lock_release(lock)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert state["max"] == 1
        assert state["count"] == 5 * len(system.cores)

    def test_barrier_counts_contexts(self):
        """An across-units barrier over every context must include the
        sibling contexts in the per-unit aggregation."""
        system = NDPSystem(smt_config(2), mechanism="syncron")
        bar = system.create_syncvar()
        n = len(system.cores)
        phases = {"done": 0}

        def worker():
            for _ in range(3):
                yield api.barrier_wait_across_units(bar, n)
            phases["done"] += 1

        makespan = system.run_programs(
            {c.core_id: worker() for c in system.cores}
        )
        assert phases["done"] == n
        assert makespan > 0

    def test_rmw_across_contexts(self):
        system = NDPSystem(smt_config(2), mechanism="syncron")
        addr = system.addrmap.alloc(unit=0, nbytes=8)

        def worker():
            for _ in range(8):
                yield RmwOp("fetch_add", addr, 1)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert system.mechanism.rmw_value(addr) == 8 * len(system.cores)

    def test_smt_hides_sync_latency_on_real_mix(self):
        """Doubling contexts on a sync+compute mix should cut the makespan
        (not necessarily 2x, but real gains), because grant waits overlap
        with the sibling's compute."""
        def run(threads):
            system = NDPSystem(smt_config(threads), mechanism="syncron")
            lock = system.create_syncvar(unit=0)
            total_rounds = 48 // threads  # same total work per physical core

            def worker():
                for _ in range(total_rounds):
                    yield api.lock_acquire(lock)
                    yield Compute(5)
                    yield api.lock_release(lock)
                    yield Compute(200)

            system.run_programs({c.core_id: worker() for c in system.cores})
            return system.sim.now

        single = run(1)
        dual = run(2)
        assert dual < single
