"""Deeper tests: memory-system paths, SE queueing/FIFO, API helpers, and
workload base utilities."""

import pytest

from repro.core import api
from repro.core.messages import Message, Opcode
from repro.sim.program import Compute, Load, Store
from repro.workloads.base import RunMetrics, collect_metrics, scaled

from repro.testing import build_system


class TestMemorySystemPaths:
    def test_writeback_counts_dram_write_off_critical_path(self, tiny_system):
        """Evicting a dirty line charges traffic/energy but not the core."""
        system = tiny_system
        cache = system.cores[0].l1
        sets = cache.num_sets
        a, b, c = 0, sets * 64, 2 * sets * 64  # same-set addresses

        def program():
            yield Store(a)          # dirty
            yield Load(b)
            yield Load(c)           # evicts a -> writeback

        system.run_programs({0: program()})
        assert system.stats.dram_writes >= 1

    def test_device_access_must_target_own_unit(self, tiny_system):
        remote = tiny_system.addrmap.alloc(1, 64)
        with pytest.raises(ValueError):
            tiny_system.memsys.device_access(0, remote, is_write=False, now=0)

    def test_sync_memory_accesses_flagged(self, tiny_system):
        addr = tiny_system.addrmap.alloc(0, 64)
        before = tiny_system.stats.sync_memory_accesses
        tiny_system.memsys.device_access(0, addr, is_write=False, now=0,
                                         for_sync=True)
        assert tiny_system.stats.sync_memory_accesses == before + 1

    def test_uncacheable_write_roundtrip_includes_dram(self, tiny_system):
        addr = tiny_system.addrmap.alloc(0, 64)
        latency = tiny_system.memsys.access(
            0, None, addr, is_write=True, cacheable=False, now=0
        )
        assert latency > tiny_system.config.l1_hit_cycles
        assert tiny_system.stats.dram_writes == 1


class TestSEInternals:
    def test_se_serializes_service(self, tiny_system):
        """Two messages arriving together finish one service apart."""
        se = tiny_system.mechanism.ses[0]
        lock_a = tiny_system.create_syncvar(unit=0)
        lock_b = tiny_system.create_syncvar(unit=0)
        done = []
        se.receive(Message(Opcode.LOCK_ACQUIRE_LOCAL, lock_a, core=0), arrival=10)
        se.receive(Message(Opcode.LOCK_ACQUIRE_LOCAL, lock_b, core=1), arrival=10)
        # grants fire per message; track via mechanism pending hooks
        tiny_system.mechanism._pending[0] = lambda: done.append(tiny_system.sim.now)
        tiny_system.mechanism._pending[1] = lambda: done.append(tiny_system.sim.now)
        tiny_system.sim.run()
        assert len(done) == 2
        assert done[1] - done[0] >= se.service_cycles

    def test_per_sender_fifo_clamp(self, tiny_system):
        """Messages from one sender can never reorder, even if computed
        network latencies would allow it."""
        se = tiny_system.mechanism.ses[0]
        order = []
        var_a = tiny_system.create_syncvar(unit=0)
        var_b = tiny_system.create_syncvar(unit=0)
        msg1 = Message(Opcode.LOCK_ACQUIRE_LOCAL, var_a, core=0)
        msg2 = Message(Opcode.LOCK_RELEASE_LOCAL, var_a, core=0)
        # artificially "out of order" arrivals from the same sender:
        se.receive(msg1, arrival=100, sender=("core", 0))
        se.receive(msg2, arrival=50, sender=("core", 0))
        original = se.dispatch

        def spy(msg):
            order.append(msg.opcode)
            original(msg)

        se.dispatch = spy
        tiny_system.mechanism._pending[0] = lambda: None
        tiny_system.sim.run()
        assert order == [Opcode.LOCK_ACQUIRE_LOCAL, Opcode.LOCK_RELEASE_LOCAL]

    def test_se_refuses_self_send(self, tiny_system):
        from repro.core.protocol import ProtocolError

        se = tiny_system.mechanism.ses[0]
        var = tiny_system.create_syncvar(unit=0)
        with pytest.raises(ProtocolError):
            se.send_se(0, Opcode.LOCK_GRANT_GLOBAL, var)

    def test_double_pending_request_rejected(self, tiny_system):
        from repro.core.protocol import ProtocolError

        core = tiny_system.cores[0]
        lock = tiny_system.create_syncvar()
        tiny_system.mechanism.request(core, "lock_acquire", lock, 0, lambda: None)
        with pytest.raises(ProtocolError):
            tiny_system.mechanism.request(core, "lock_acquire", lock, 0,
                                          lambda: None)

    def test_wake_without_pending_raises(self, tiny_system):
        from repro.core.protocol import ProtocolError

        with pytest.raises(ProtocolError):
            tiny_system.mechanism.wake(99)

    def test_occupancy_sampled_per_message(self, tiny_system):
        lock = tiny_system.create_syncvar()

        def worker():
            yield api.lock_acquire(lock)
            yield api.lock_release(lock)

        tiny_system.run_programs({0: worker()})
        assert tiny_system.stats.st_occupancy_max.get(lock.unit, 0) >= 1


class TestApiHelpers:
    def test_all_helpers_produce_ops(self, tiny_system):
        lock = tiny_system.create_syncvar()
        bar = tiny_system.create_syncvar()
        sem = tiny_system.create_syncvar()
        cond = tiny_system.create_syncvar()
        assert api.lock_acquire(lock).op == "lock_acquire"
        assert api.lock_release(lock).op == "lock_release"
        assert api.barrier_wait_within_unit(bar, 4).info == 4
        assert api.barrier_wait_across_units(bar, 8).info == 8
        assert api.sem_wait(sem, 2).info == 2
        assert api.sem_post(sem).op == "sem_post"
        assert api.cond_wait(cond, lock).info is lock
        assert api.cond_signal(cond).op == "cond_signal"
        assert api.cond_broadcast(cond).op == "cond_broadcast"

    def test_argument_validation(self, tiny_system):
        bar = tiny_system.create_syncvar()
        sem = tiny_system.create_syncvar()
        with pytest.raises(ValueError):
            api.barrier_wait_within_unit(bar, 0)
        with pytest.raises(ValueError):
            api.sem_wait(sem, -1)


class TestWorkloadBase:
    def test_scaled_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert scaled(10) == 10
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert scaled(10) == 30
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scaled(10) == 100

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            scaled(10)

    def test_collect_metrics_and_speedup(self, tiny_system):
        def program():
            yield Compute(100)

        cycles = tiny_system.run_programs({0: program()})
        metrics = collect_metrics(tiny_system, cycles, operations=10)
        assert metrics.cycles == 100
        assert metrics.ops_per_second == pytest.approx(10 / metrics.seconds)
        slower = RunMetrics(**{**metrics.__dict__, "cycles": 200})
        assert metrics.speedup_over(slower) == pytest.approx(2.0)

    def test_zero_cycle_metrics(self, tiny_system):
        metrics = collect_metrics(tiny_system, 0, operations=0)
        assert metrics.ops_per_second == 0.0


class TestFlatSpecifics:
    def test_flat_condvar_routes_lock_ops_to_master(self, quad_config):
        """Regression: flat cond_wait must release/re-acquire the associated
        lock at the *lock's* master SE, not the condvar's."""
        system = build_system(quad_config, "syncron_flat")
        lock = system.create_syncvar(unit=0)
        cond = system.create_syncvar(unit=3)  # different master on purpose
        state = {"woken": 0, "waiting": 0}

        def waiter():
            yield api.lock_acquire(lock)
            state["waiting"] += 1
            yield api.cond_wait(cond, lock)
            state["woken"] += 1
            yield api.lock_release(lock)

        def signaler():
            while state["woken"] < 2:
                yield Compute(150)
                yield api.lock_acquire(lock)
                if state["waiting"] > 0:
                    state["waiting"] -= 1
                    yield api.cond_signal(cond)
                yield api.lock_release(lock)

        system.run_programs({0: waiter(), 1: waiter(), 2: signaler()})
        assert state["woken"] == 2


class TestServerShadowState:
    """ServerEngine._state_address: where a software server keeps its
    bookkeeping for a variable (satellite coverage — previously untested)."""

    def _hier_server(self, tiny_config, unit=0):
        system = build_system(tiny_config, "hier")
        return system, system.mechanism.ses[unit]

    def test_master_server_uses_the_variable_itself(self, tiny_config):
        system, server = self._hier_server(tiny_config, unit=0)
        var = system.create_syncvar(unit=0)
        assert server._state_address(var) == var.addr

    def test_non_master_shadow_lands_in_servers_own_unit(self, tiny_config):
        system, server = self._hier_server(tiny_config, unit=0)
        var = system.create_syncvar(unit=1)  # master is SE 1, not SE 0
        shadow = server._state_address(var)
        assert shadow != var.addr
        assert system.addrmap.unit_of(shadow) == 0
        # line-granular, line-aligned allocation
        assert shadow % system.config.cache_line_bytes == 0

    def test_shadow_reused_across_requests(self, tiny_config):
        system, server = self._hier_server(tiny_config, unit=0)
        var = system.create_syncvar(unit=1)
        first = server._state_address(var)
        used_after_first = system.addrmap.bytes_used(0)
        assert server._state_address(var) == first
        assert system.addrmap.bytes_used(0) == used_after_first
        # distinct variables get distinct shadows
        other = system.create_syncvar(unit=1)
        assert server._state_address(other) != first

    def test_shadow_access_charged_through_server_l1(self, tiny_config):
        system, server = self._hier_server(tiny_config, unit=0)
        var = system.create_syncvar(unit=1)
        stats = system.stats
        hits0, misses0 = stats.cache_hits, stats.cache_misses
        server._extra = 0
        server._charge_state_access(var)
        # cold: the shadow line misses in the server's private L1
        assert stats.cache_misses > misses0
        cold_extra = server._extra
        assert cold_extra > 0
        hits1 = stats.cache_hits
        server._extra = 0
        server._charge_state_access(var)
        # warm: same line now hits, and the handler gets cheaper
        assert stats.cache_hits > hits1
        assert 0 < server._extra < cold_extra

    def test_hier_run_allocates_shadows_for_remote_vars(self, tiny_config):
        """End-to-end: unit-0 clients locking a unit-1 variable make SE 0
        keep non-master bookkeeping in unit 0's memory."""
        system = build_system(tiny_config, "hier")
        var = system.create_syncvar(unit=1, name="remote_lock")
        done = {"count": 0}

        def worker():
            yield api.lock_acquire(var)
            done["count"] += 1
            yield api.lock_release(var)

        unit0 = [c for c in system.cores if c.unit_id == 0]
        system.run_programs({c.core_id: worker() for c in unit0})
        assert done["count"] == len(unit0)
        local_server = system.mechanism.ses[0]
        shadow = local_server._shadow.get(var.addr)
        assert shadow is not None
        assert system.addrmap.unit_of(shadow) == 0
