"""Graph datasets, partitioning, and kernels (verified against networkx)."""

import pytest

from repro.workloads.base import run_workload
from repro.workloads.graphs import (
    ALL_KERNELS,
    BFSWorkload,
    ConnectedComponentsWorkload,
    DATASETS,
    PageRankWorkload,
    SSSPWorkload,
    TeenageFollowersWorkload,
    TriangleCountingWorkload,
    barabasi_albert,
    bfs_partition,
    edge_cut,
    load_dataset,
    part_sizes,
    random_partition,
)

networkx = pytest.importorskip("networkx")


SMALL_GRAPH = barabasi_albert(60, 2, seed=42)


class TestDatasets:
    def test_generator_produces_valid_graph(self):
        SMALL_GRAPH.validate()
        assert SMALL_GRAPH.num_vertices == 60
        assert SMALL_GRAPH.num_edges >= 2 * (60 - 3)

    def test_graph_is_connected(self):
        g = networkx.Graph()
        g.add_edges_from(SMALL_GRAPH.edges())
        assert networkx.is_connected(g)

    def test_degree_distribution_is_skewed(self):
        """Preferential attachment must produce hubs (power-law-ish)."""
        degrees = sorted(SMALL_GRAPH.degree(v) for v in range(60))
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_deterministic_for_a_seed(self):
        again = barabasi_albert(60, 2, seed=42)
        assert again.adjacency == SMALL_GRAPH.adjacency

    def test_named_datasets_scale_ordering(self):
        sizes = {name: load_dataset(name).num_vertices for name in DATASETS}
        assert sizes["wk"] < sizes["sl"] < sizes["sx"] < sizes["co"]

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("zz")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3, seed=0)


class TestPartitioning:
    def test_random_partition_is_balanced(self):
        assignment = random_partition(SMALL_GRAPH, 4, seed=1)
        sizes = part_sizes(assignment, 4)
        assert max(sizes) - min(sizes) <= 1

    def test_bfs_partition_is_balanced(self):
        assignment = bfs_partition(SMALL_GRAPH, 4)
        sizes = part_sizes(assignment, 4)
        assert max(sizes) - min(sizes) <= 4

    def test_bfs_partition_cuts_fewer_edges_than_random(self):
        """The Fig. 19 premise: the METIS substitute reduces the edge cut."""
        graph = barabasi_albert(200, 2, seed=9)
        cut_random = edge_cut(graph, random_partition(graph, 4, seed=3))
        cut_bfs = edge_cut(graph, bfs_partition(graph, 4))
        assert cut_bfs < cut_random

    def test_edge_cut_of_single_part_is_zero(self):
        assert edge_cut(SMALL_GRAPH, [0] * 60) == 0

    def test_mismatched_assignment_rejected(self):
        with pytest.raises(ValueError):
            edge_cut(SMALL_GRAPH, [0, 1])


class TestKernelsAgainstNetworkx:
    """Each kernel's internal reference is itself checked against networkx
    here, so the simulated runs are verified against two independent
    implementations."""

    def nx_graph(self):
        g = networkx.Graph()
        g.add_nodes_from(range(SMALL_GRAPH.num_vertices))
        g.add_edges_from(SMALL_GRAPH.edges())
        return g

    def test_bfs_distances(self, tiny_config):
        workload = BFSWorkload(graph=SMALL_GRAPH)
        run_metrics = run_workload(lambda: workload, tiny_config, "syncron")
        expected = networkx.single_source_shortest_path_length(self.nx_graph(), 0)
        for v in range(SMALL_GRAPH.num_vertices):
            assert workload.dist[v] == expected[v]

    def test_cc_labels(self, tiny_config):
        workload = ConnectedComponentsWorkload(graph=SMALL_GRAPH)
        run_workload(lambda: workload, tiny_config, "syncron")
        for comp in networkx.connected_components(self.nx_graph()):
            expected = min(comp)
            assert all(workload.labels[v] == expected for v in comp)

    def test_sssp_distances(self, tiny_config):
        workload = SSSPWorkload(graph=SMALL_GRAPH)
        run_workload(lambda: workload, tiny_config, "syncron")
        g = self.nx_graph()
        for u, v in g.edges():
            g[u][v]["weight"] = workload.weights[(u, v)]
        expected = networkx.single_source_dijkstra_path_length(g, 0)
        for v in range(SMALL_GRAPH.num_vertices):
            assert workload.dist[v] == expected[v]

    def test_triangle_count(self, tiny_config):
        workload = TriangleCountingWorkload(graph=SMALL_GRAPH)
        run_workload(lambda: workload, tiny_config, "syncron")
        expected = sum(networkx.triangles(self.nx_graph()).values()) // 3
        assert sum(workload.triangles) == expected

    def test_pagerank_matches_power_iteration(self, tiny_config):
        workload = PageRankWorkload(graph=SMALL_GRAPH)
        run_workload(lambda: workload, tiny_config, "syncron")
        assert abs(sum(workload.rank) - 1.0) < 1e-6

    def test_teenage_followers(self, tiny_config):
        workload = TeenageFollowersWorkload(graph=SMALL_GRAPH)
        run_workload(lambda: workload, tiny_config, "syncron")
        teens = [v for v in range(60) if workload.age[v] < 20]
        total = sum(workload.followers)
        assert total == sum(SMALL_GRAPH.degree(v) for v in teens)


@pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
@pytest.mark.parametrize("mechanism", ("central", "hier", "syncron", "ideal"))
def test_kernels_verify_on_all_mechanisms(tiny_config, kernel, mechanism):
    cls = ALL_KERNELS[kernel]
    metrics = run_workload(
        lambda: cls(graph=SMALL_GRAPH), tiny_config, mechanism
    )
    assert metrics.cycles > 0


class TestKernelPlumbing:
    def test_vertices_assigned_to_owning_units_cores(self, quad_config):
        from repro.testing import build_system

        system = build_system(quad_config)
        workload = BFSWorkload(graph=SMALL_GRAPH)
        workload.build(system)
        for core in system.cores:
            for v in workload._my_vertices[core.core_id]:
                assert workload.assignment[v] == core.unit_id

    def test_vertex_locks_live_in_partition_unit(self, quad_config):
        from repro.testing import build_system

        system = build_system(quad_config)
        workload = ConnectedComponentsWorkload(graph=SMALL_GRAPH)
        workload.build(system)
        for v in range(SMALL_GRAPH.num_vertices):
            assert workload.vertex_lock[v].unit == workload.assignment[v]

    def test_rounds_bounded(self, tiny_config):
        workload = ConnectedComponentsWorkload(graph=SMALL_GRAPH)
        run_workload(lambda: workload, tiny_config, "syncron")
        assert workload.rounds_executed <= workload.max_rounds
