"""Runtime determinism sanitizer: the synthetic ordering-hazard workload
must be flagged (both write-write and read-write), causally-related
same-cycle events and allowlisted rendezvous state must not be, and every
real synchronization mechanism must come out hazard-free.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    AccessRecorder,
    SanitizerSession,
    current_session,
    note_read,
    sanitize_session,
    sanitizer_active,
)
from repro.sim.engine import Simulator
from repro.testing import ALL_MECHANISMS, SPIN_MECHANISMS
from repro.workloads import PrimitiveMicrobench
from repro.workloads.base import run_workload


class Mailbox:
    """Deliberately order-sensitive: ``slot`` keeps the *last* writer's
    value, so two same-cycle unordered writes are a real hazard."""

    def __init__(self):
        self.slot = "empty"
        self.seen = "nothing"

    def put_a(self):
        self.slot = "a"

    def put_b(self):
        self.slot = "b"

    def peek(self):
        note_read(self, "slot")
        self.seen = self.slot


class Accumulator:
    """Commutative numeric accumulation: same-cycle increments are safe."""

    def __init__(self):
        self.total = 0

    def add(self, amount):
        self.total += amount


def run_sanitized(*schedules):
    """Run a fresh simulator under a session; returns the session."""
    with sanitize_session() as session:
        sim = Simulator()
        sim.enable_sanitizer()
        for time, callback, *args in schedules:
            sim.schedule_at(time, callback, *args)
        sim.run()
    return session


# ----------------------------------------------------------------------
# The synthetic ordering-hazard workload (acceptance criterion)
# ----------------------------------------------------------------------
class TestSyntheticHazards:
    def test_same_cycle_unordered_writes_flagged(self):
        box = Mailbox()
        session = run_sanitized((5, box.put_a), (5, box.put_b))
        kinds = [h.kind for h in session.hazards]
        assert kinds == ["write-write"]
        hazard = session.hazards[0]
        assert hazard.cycle == 5
        assert hazard.attr == "slot"
        assert hazard.obj.startswith("Mailbox#")

    def test_read_then_same_cycle_write_flagged(self):
        box = Mailbox()
        session = run_sanitized((9, box.peek), (9, box.put_a))
        assert [h.kind for h in session.hazards] == ["read-write"]
        assert session.hazards[0].attr == "slot"

    def test_both_hazard_kinds_in_one_run(self):
        box = Mailbox()
        session = run_sanitized(
            (5, box.put_a), (5, box.put_b),   # WW at cycle 5
            (9, box.peek), (9, box.put_a),    # RW at cycle 9
        )
        assert sorted(h.kind for h in session.hazards) == [
            "read-write", "write-write",
        ]
        assert session.events_observed == 4
        assert "2 hazard(s)" in session.report()

    def test_writes_on_different_cycles_are_ordered(self):
        box = Mailbox()
        session = run_sanitized((5, box.put_a), (6, box.put_b))
        assert session.hazards == []

    def test_same_cycle_writes_to_different_objects_fine(self):
        a, b = Mailbox(), Mailbox()
        session = run_sanitized((5, a.put_a), (5, b.put_b))
        assert session.hazards == []

    def test_numeric_accumulation_is_commutative(self):
        acc = Accumulator()
        session = run_sanitized((5, acc.add, 1), (5, acc.add, 2))
        assert session.hazards == []
        assert acc.total == 3

    def test_hazard_serialization(self):
        box = Mailbox()
        session = run_sanitized((5, box.put_a), (5, box.put_b))
        payload = session.hazards[0].as_dict()
        assert payload["kind"] == "write-write"
        assert payload["cycle"] == 5
        assert len(payload["events"]) == 2
        assert "write-write" in session.hazards[0].describe()


# ----------------------------------------------------------------------
# Causal ordering within a cycle
# ----------------------------------------------------------------------
class TestCausality:
    def test_descendant_write_is_ordered(self):
        """An event that schedules a same-cycle follow-up IS ordered with
        it — request/continuation chains must not be flagged."""
        sim_holder = {}

        class Chained:
            def __init__(self):
                self.slot = "empty"

            def first(self):
                self.slot = "first"
                sim_holder["sim"].schedule(0, self.second)

            def second(self):
                self.slot = "second"

        with sanitize_session() as session:
            sim = Simulator()
            sim_holder["sim"] = sim
            sim.enable_sanitizer()
            obj = Chained()
            sim.schedule_at(5, obj.first)
            sim.run()
        assert session.hazards == []
        assert obj.slot == "second"

    def test_unrelated_sibling_of_descendant_still_flagged(self):
        """Causality is per-chain: a third independent writer in the same
        cycle still conflicts with the chain."""
        sim_holder = {}

        class Chained:
            def __init__(self):
                self.slot = "empty"

            def first(self):
                self.slot = "first"
                sim_holder["sim"].schedule(0, self.second)

            def second(self):
                self.slot = "second"

            def intruder(self):
                self.slot = "intruder"

        with sanitize_session() as session:
            sim = Simulator()
            sim_holder["sim"] = sim
            sim.enable_sanitizer()
            obj = Chained()
            sim.schedule_at(5, obj.first)
            sim.schedule_at(5, obj.intruder)
            sim.run()
        assert [h.kind for h in session.hazards] == ["write-write"]


# ----------------------------------------------------------------------
# Allowlist
# ----------------------------------------------------------------------
class TestAllowlist:
    def test_exact_entry_suppresses(self):
        box = Mailbox()
        with sanitize_session(allowlist={("Mailbox", "slot")}) as session:
            sim = Simulator()
            sim.enable_sanitizer()
            sim.schedule_at(5, box.put_a)
            sim.schedule_at(5, box.put_b)
            sim.run()
        assert session.hazards == []

    def test_base_class_entry_covers_subclass(self):
        class FancyMailbox(Mailbox):
            pass

        box = FancyMailbox()
        with sanitize_session(allowlist={("Mailbox", "slot")}) as session:
            sim = Simulator()
            sim.enable_sanitizer()
            sim.schedule_at(5, box.put_a)
            sim.schedule_at(5, box.put_b)
            sim.run()
        assert session.hazards == []

    def test_entry_for_other_attr_does_not_suppress(self):
        box = Mailbox()
        with sanitize_session(allowlist={("Mailbox", "seen")}) as session:
            sim = Simulator()
            sim.enable_sanitizer()
            sim.schedule_at(5, box.put_a)
            sim.schedule_at(5, box.put_b)
            sim.run()
        assert len(session.hazards) == 1


# ----------------------------------------------------------------------
# Session plumbing
# ----------------------------------------------------------------------
class TestSession:
    def test_session_globals(self):
        assert not sanitizer_active()
        assert current_session() is None
        with sanitize_session() as session:
            assert sanitizer_active()
            assert current_session() is session
        assert not sanitizer_active()

    def test_nested_sessions_rejected(self):
        with sanitize_session():
            with pytest.raises(RuntimeError):
                with sanitize_session():
                    pass

    def test_notes_outside_session_are_noops(self):
        box = Mailbox()
        note_read(box, "slot")   # must not raise

    def test_standalone_recorder_without_session(self):
        """``enable_sanitizer`` works without a session for ad-hoc use."""
        sim = Simulator()
        sim.enable_sanitizer()
        assert isinstance(sim.sanitizer, AccessRecorder)
        box = Mailbox()
        sim.schedule_at(5, box.put_a)
        sim.schedule_at(5, box.put_b)
        sim.run()
        assert len(sim.sanitizer.hazards) == 1

    def test_multi_simulator_session_aggregates(self):
        with sanitize_session() as session:
            for _ in range(2):
                sim = Simulator()
                sim.enable_sanitizer()
                box = Mailbox()
                sim.schedule_at(5, box.put_a)
                sim.schedule_at(5, box.put_b)
                sim.run()
        assert len(session.recorders) == 2
        assert len(session.hazards) == 2

    def test_report_string(self):
        session = SanitizerSession()
        assert "0 hazard(s)" in session.report()

    def test_sanitized_drain_matches_plain_run(self, tiny_config):
        """Physics must be identical with and without the sanitizer."""
        plain = run_workload(
            lambda: PrimitiveMicrobench("lock", interval=10, rounds=5),
            tiny_config, "syncron")
        with sanitize_session():
            sanitized = run_workload(
                lambda: PrimitiveMicrobench("lock", interval=10, rounds=5),
                tiny_config, "syncron")
        assert sanitized.cycles == plain.cycles
        assert sanitized.operations == plain.operations


# ----------------------------------------------------------------------
# Real mechanisms are hazard-free (acceptance criterion)
# ----------------------------------------------------------------------
class TestMechanismsClean:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS + SPIN_MECHANISMS)
    @pytest.mark.parametrize("primitive", ["lock", "barrier"])
    def test_microbench_hazard_free(self, tiny_config, mechanism, primitive):
        with sanitize_session() as session:
            metrics = run_workload(
                lambda: PrimitiveMicrobench(primitive, interval=10, rounds=5),
                tiny_config, mechanism)
        assert metrics.cycles > 0
        assert session.events_observed > 0
        assert session.hazards == [], "\n".join(
            h.describe() for h in session.hazards)
