"""Spec hashing, result store, and parallel sweep determinism."""

import json

import pytest

from repro.harness import runner as runner_mod
from repro.harness.runner import (
    execution_options,
    run_specs,
    run_sweep,
)
from repro.harness.specs import (
    CACHE_FORMAT_VERSION,
    RunSpec,
    SweepSpec,
    freeze,
)
from repro.harness.store import ShardedDirStore
from repro.sim.config import SystemConfig, ndp_2_5d
from repro.workloads.base import RunMetrics


def _entry_path(tmp_path, spec):
    """The sharded-store file holding ``spec``'s result."""
    return ShardedDirStore(tmp_path).path_for(spec.cache_key())


def _lock_spec(**kwargs):
    base = dict(workload="primitive", mechanism="syncron",
                args={"primitive": "lock", "interval": 100, "rounds": 3})
    base.update(kwargs)
    return RunSpec.make(base.pop("workload"), base.pop("mechanism"), **base)


class TestSpecHashing:
    def test_identical_specs_share_a_key(self):
        assert _lock_spec().cache_key() == _lock_spec().cache_key()

    def test_arg_order_is_canonical(self):
        a = RunSpec.make("primitive", "syncron",
                         args={"primitive": "lock", "interval": 100, "rounds": 3})
        b = RunSpec.make("primitive", "syncron",
                         args={"rounds": 3, "interval": 100, "primitive": "lock"})
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize("change", [
        {"mechanism": "central"},
        {"args": {"primitive": "lock", "interval": 100, "rounds": 4}},
        {"args": {"primitive": "barrier", "interval": 100, "rounds": 3}},
        {"overrides": {"num_units": 2}},
        {"overrides": {"link_latency": 100}},          # aliased field
        {"overrides": {"memory": "DDR4"}},             # nested DramTiming
        {"overrides": {"fairness_threshold": 4}},
        {"preset": "ndp_3d"},
    ])
    def test_any_changed_field_changes_the_key(self, change):
        assert _lock_spec(**change).cache_key() != _lock_spec().cache_key()

    def test_scale_is_part_of_the_key(self):
        assert (_lock_spec(run_scale="full").cache_key()
                != _lock_spec(run_scale="small").cache_key())

    def test_unknown_workload_and_config_field_rejected(self):
        with pytest.raises(ValueError):
            RunSpec.make("no_such_workload")
        with pytest.raises(ValueError):
            RunSpec.make("primitive", overrides={"not_a_field": 1})
        with pytest.raises(ValueError):
            RunSpec.make("primitive", preset="no_such_preset")

    def test_config_resolution_applies_alias_and_memory_name(self):
        spec = _lock_spec(overrides={"link_latency": 100, "memory": "HMC"})
        config = spec.config()
        assert config.link_latency_ns == 100
        assert config.memory.name == "HMC"

    def test_freeze_rejects_non_plain_data(self):
        with pytest.raises(TypeError):
            freeze({"bad": object()})

    def test_config_stable_hash_covers_nested_fields(self):
        base = ndp_2_5d()
        tweaked_memory = base.with_(memory=base.memory)
        assert base.stable_hash() == tweaked_memory.stable_hash()
        deep = base.with_(memory=base.memory.__class__(
            **{**base.memory.__dict__, "cas_ns": 9.0}))
        assert deep.stable_hash() != base.stable_hash()

    def test_config_dict_round_trip(self):
        config = ndp_2_5d(num_units=2, link_latency_ns=100.0)
        assert SystemConfig.from_dict(config.as_dict()) == config


class TestResultCache:
    def test_hit_after_put(self, tmp_path):
        spec = _lock_spec()
        runner_mod.STATS.reset()
        first = run_specs([spec], cache=True, cache_dir=str(tmp_path))
        assert runner_mod.STATS.executed == 1
        runner_mod.STATS.reset()
        again = run_specs([spec], cache=True, cache_dir=str(tmp_path))
        assert runner_mod.STATS.executed == 0
        assert runner_mod.STATS.cache_hits == 1
        assert again[0] == first[0]

    def test_changed_nested_override_misses(self, tmp_path):
        run_specs([_lock_spec()], cache=True, cache_dir=str(tmp_path))
        runner_mod.STATS.reset()
        run_specs([_lock_spec(overrides={"memory": "DDR4"})],
                  cache=True, cache_dir=str(tmp_path))
        assert runner_mod.STATS.executed == 1

    def test_corrupted_entry_quarantined_and_recomputed(self, tmp_path):
        spec = _lock_spec()
        first = run_specs([spec], cache=True, cache_dir=str(tmp_path))
        path = _entry_path(tmp_path, spec)
        # truncate the stored object into invalid JSON
        path.write_text(path.read_text()[:40])
        runner_mod.STATS.reset()
        again = run_specs([spec], cache=True, cache_dir=str(tmp_path))
        assert runner_mod.STATS.executed == 1  # recomputed
        assert again[0] == first[0]
        # the damaged bytes were moved aside, not silently destroyed
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [path.name]

    def test_version_bump_invalidates(self, tmp_path):
        spec = _lock_spec()
        run_specs([spec], cache=True, cache_dir=str(tmp_path))
        path = _entry_path(tmp_path, spec)
        record = json.loads(path.read_text())
        record["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(record) + "\n")
        runner_mod.STATS.reset()
        run_specs([spec], cache=True, cache_dir=str(tmp_path))
        assert runner_mod.STATS.executed == 1

    def test_duplicate_specs_simulate_once(self):
        runner_mod.STATS.reset()
        results = run_specs([_lock_spec(), _lock_spec()])
        assert runner_mod.STATS.executed == 1
        assert results[0] == results[1]

    def test_measurement_specs_cache_plain_rows(self, tmp_path):
        spec = RunSpec.make(
            "mesi_stack", "mesi", args={"ops_per_core": 2},
            overrides={"num_units": 1, "cores_per_unit": 3,
                       "client_cores_per_unit": 2},
        )
        row = run_specs([spec], cache=True, cache_dir=str(tmp_path))[0]
        assert isinstance(row, dict) and row["cycles"] > 0
        runner_mod.STATS.reset()
        warm = run_specs([spec], cache=True, cache_dir=str(tmp_path))[0]
        assert runner_mod.STATS.executed == 0
        assert warm == row


class TestParallelDeterminism:
    def test_parallel_matches_serial_on_fig12_subset(self):
        from repro.harness.experiments import fig12

        combos = ("tc.wk", "bfs.wk")
        mechanisms = ("central", "syncron")
        serial = fig12(combos=combos, mechanisms=mechanisms)
        with execution_options(jobs=2):
            parallel = fig12(combos=combos, mechanisms=mechanisms)
        assert parallel == serial

    def test_parallel_run_specs_order_matches_spec_order(self):
        specs = [
            _lock_spec(mechanism=mech) for mech in ("central", "syncron", "ideal")
        ]
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=3)
        assert [m.cycles for m in parallel] == [m.cycles for m in serial]
        assert [m.mechanism for m in parallel] == ["central", "syncron", "ideal"]

    def test_metrics_survive_the_json_round_trip(self):
        metrics = run_specs([_lock_spec()])[0]
        assert RunMetrics.from_dict(
            json.loads(json.dumps(metrics.as_dict()))) == metrics


class TestSweepSpec:
    def test_matrix_cross_product(self):
        sweep = SweepSpec.matrix(
            "m",
            workloads=[("app", {"combo": "bfs.wk"}), ("app", {"combo": "cc.sl"})],
            mechanisms=("syncron", "hier"),
            vary={"link_latency": (1, 4, 16)},
        )
        assert len(sweep) == 2 * 3 * 2
        # every spec resolves to a distinct cache key
        assert len({spec.cache_key() for spec in sweep}) == len(sweep)
        latencies = {spec.config().link_latency_ns for spec in sweep}
        assert latencies == {1, 4, 16}

    def test_cli_sweep_expresses_a_non_figure_matrix(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--mechanisms", "syncron,ideal",
            "--structures", "stack",
            "--vary", "fairness_threshold=0,2",
            "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness_threshold" in out
        assert out.count("stack") == 2  # one row per vary value

    def test_cli_sweep_rejects_unknown_field(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--structures", "stack",
                     "--vary", "bogus=1,2"]) == 2

    @pytest.mark.parametrize("argv", [
        ["--apps", "bfs.typo"],
        ["--apps", "nope.wk"],
        ["--apps", "ts.nope"],
        ["--structures", "dequeue"],
        ["--primitives", "mutex"],
        ["--structures", "stack", "--mechanisms", "syncron,quantum"],
    ])
    def test_cli_sweep_rejects_bad_names_before_running(self, argv, capsys):
        from repro.cli import main

        assert main(["sweep", "--no-cache", *argv]) == 2
        assert "choose from" in capsys.readouterr().err

    def test_cli_csv_strips_whitespace(self):
        from repro.cli import _csv

        assert _csv("bfs.wk, cc.sl ,") == ("bfs.wk", "cc.sl")

    def test_seed_on_unseedable_workload_does_not_crash(self):
        # --seed on a mixed CLI sweep must not break deterministic
        # workloads whose constructors take no seed.
        spec = RunSpec.make("primitive",
                            args={"primitive": "lock", "interval": 100,
                                  "rounds": 2}, seed=3)
        assert spec.build_workload().rounds == 2
        # ...and since the seed is never forwarded, it must not split
        # cache keys between physically identical runs.
        assert spec.cache_key() == _lock_spec(
            args={"primitive": "lock", "interval": 100, "rounds": 2}
        ).cache_key()

    def test_int_and_float_overrides_share_a_key(self):
        # CLI sweeps parse 40 as int; figure code passes 40.0.
        a = _lock_spec(overrides={"link_latency": 40})
        b = _lock_spec(overrides={"link_latency_ns": 40.0})
        assert a.cache_key() == b.cache_key()
        c = _lock_spec(overrides={"st_entries": 8.0})
        d = _lock_spec(overrides={"st_entries": 8})
        assert c.cache_key() == d.cache_key()
        assert isinstance(c.config().st_entries, int)

    def test_stale_schema_cache_record_falls_back_to_simulation(self, tmp_path):
        spec = _lock_spec()
        first = run_specs([spec], cache=True, cache_dir=str(tmp_path))
        path = _entry_path(tmp_path, spec)
        record = json.loads(path.read_text())
        # simulate a RunMetrics schema change without a version bump; the
        # entry's self-digest is recomputed so it still reads as intact
        record["result"]["renamed_field"] = record["result"].pop("cycles")
        from repro.harness.store import payload_digest

        record["digest"] = payload_digest(record)
        path.write_text(json.dumps(record) + "\n")
        runner_mod.STATS.reset()
        again = run_specs([spec], cache=True, cache_dir=str(tmp_path))
        assert runner_mod.STATS.executed == 1
        assert again[0] == first[0]

    def test_seed_changes_structure_results_key(self):
        a = RunSpec.make("structure", args={"structure": "stack"}, seed=1)
        b = RunSpec.make("structure", args={"structure": "stack"}, seed=2)
        assert a.cache_key() != b.cache_key()
        # and the seed actually reaches the workload
        assert a.build_workload().seed == 1
        assert b.build_workload().seed == 2
