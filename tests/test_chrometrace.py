"""Chrome-trace export: valid Trace Event JSON with faithful content."""

import json

from repro.core import api
from repro.sim.chrometrace import trace_events, write_chrome_trace
from repro.sim.program import Compute
from repro.sim.trace import MessageTracer

from repro.testing import build_system


def traced_run(tiny_config, mechanism="syncron"):
    system = build_system(tiny_config, mechanism)
    tracer = MessageTracer(system)
    lock = system.create_syncvar(unit=1, name="Lx")

    def worker():
        for _ in range(3):
            yield api.lock_acquire(lock)
            yield Compute(10)
            yield api.lock_release(lock)

    system.run_programs({c.core_id: worker() for c in system.cores})
    return system, tracer


class TestTraceEvents:
    def test_every_message_becomes_a_duration_event(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=False)
        durations = [e for e in events if e.get("ph") == "X"]
        assert len(durations) == len(tracer.records)

    def test_engine_tracks_are_named(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer)
        names = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name" and e["pid"] == 1
        }
        assert "SE0" in names and "SE1" in names

    def test_core_spans_included(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=True)
        spans = [e for e in events if e.get("cat") == "execution"]
        assert len(spans) == len(system.cores)
        for span in spans:
            assert span["dur"] > 0
            assert span["args"]["sync_requests"] == 6  # 3 acquires+releases

    def test_categories_mark_hierarchy(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=False)
        categories = {e.get("cat") for e in events if e.get("ph") == "X"}
        # Remote-unit cores force global messages to the master.
        assert "local" in categories and "global" in categories

    def test_timestamps_in_nanoseconds(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=False)
        last = max(e["ts"] for e in events if e.get("ph") == "X")
        # 2.5 GHz: simulated ns = cycles / 2.5.
        assert last <= system.sim.now / 2.5 + 1e-9

    def test_overflow_category(self, tiny_config):
        """Overflow opcodes appear when a *local* (non-master) SE's ST is
        full and it must redirect its cores' requests to the Master SE."""
        config = tiny_config.with_(st_entries=1)
        system = build_system(config, "syncron")
        tracer = MessageTracer(system)
        local_blocker = system.create_syncvar(unit=1, name="b1")
        victim = system.create_syncvar(unit=0, name="v")
        unit1 = system.cores_in_unit(1)

        def holder():
            # Occupies unit 1's single ST entry for the whole run.
            yield api.lock_acquire(local_blocker)
            yield Compute(20000)
            yield api.lock_release(local_blocker)

        def worker():
            for _ in range(2):
                yield api.lock_acquire(victim)
                yield api.lock_release(victim)

        programs = {unit1[0].core_id: holder()}
        for core in unit1[1:]:
            programs[core.core_id] = worker()
        system.run_programs(programs)
        events = trace_events(system, tracer, include_cores=False)
        categories = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert "overflow" in categories


class TestWriteChromeTrace:
    def test_written_file_is_loadable_json(self, tiny_config, tmp_path):
        system, tracer = traced_run(tiny_config)
        path = tmp_path / "run.json"
        count = write_chrome_trace(str(path), system, tracer,
                                   metadata={"experiment": "unit-test"})
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert document["otherData"]["mechanism"] == "syncron"
        assert document["otherData"]["experiment"] == "unit-test"
        assert document["otherData"]["cores"] == len(system.cores)

    def test_works_on_server_mechanisms(self, tiny_config, tmp_path):
        system, tracer = traced_run(tiny_config, mechanism="central")
        path = tmp_path / "central.json"
        count = write_chrome_trace(str(path), system, tracer)
        assert count > 0
        document = json.loads(path.read_text())
        assert document["otherData"]["mechanism"] == "central"
