"""Chrome-trace export: valid Trace Event JSON with faithful content."""

import json

import pytest

from repro.core import api
from repro.sim.chrometrace import trace_events, write_chrome_trace
from repro.sim.program import Compute
from repro.sim.trace import MessageTracer

from repro.testing import build_system


def traced_run(tiny_config, mechanism="syncron"):
    system = build_system(tiny_config, mechanism)
    tracer = MessageTracer(system)
    lock = system.create_syncvar(unit=1, name="Lx")

    def worker():
        for _ in range(3):
            yield api.lock_acquire(lock)
            yield Compute(10)
            yield api.lock_release(lock)

    system.run_programs({c.core_id: worker() for c in system.cores})
    return system, tracer


class TestTraceEvents:
    def test_every_message_becomes_a_duration_event(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=False)
        durations = [e for e in events if e.get("ph") == "X"]
        assert len(durations) == len(tracer.records)

    def test_engine_tracks_are_named(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer)
        names = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name" and e["pid"] == 1
        }
        assert "SE0" in names and "SE1" in names

    def test_core_spans_included(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=True)
        spans = [e for e in events if e.get("cat") == "execution"]
        assert len(spans) == len(system.cores)
        for span in spans:
            assert span["dur"] > 0
            assert span["args"]["sync_requests"] == 6  # 3 acquires+releases

    def test_categories_mark_hierarchy(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=False)
        categories = {e.get("cat") for e in events if e.get("ph") == "X"}
        # Remote-unit cores force global messages to the master.
        assert "local" in categories and "global" in categories

    def test_timestamps_in_nanoseconds(self, tiny_config):
        system, tracer = traced_run(tiny_config)
        events = trace_events(system, tracer, include_cores=False)
        last = max(e["ts"] for e in events if e.get("ph") == "X")
        # 2.5 GHz: simulated ns = cycles / 2.5.
        assert last <= system.sim.now / 2.5 + 1e-9

    def test_overflow_category(self, tiny_config):
        """Overflow opcodes appear when a *local* (non-master) SE's ST is
        full and it must redirect its cores' requests to the Master SE."""
        config = tiny_config.with_(st_entries=1)
        system = build_system(config, "syncron")
        tracer = MessageTracer(system)
        local_blocker = system.create_syncvar(unit=1, name="b1")
        victim = system.create_syncvar(unit=0, name="v")
        unit1 = system.cores_in_unit(1)

        def holder():
            # Occupies unit 1's single ST entry for the whole run.
            yield api.lock_acquire(local_blocker)
            yield Compute(20000)
            yield api.lock_release(local_blocker)

        def worker():
            for _ in range(2):
                yield api.lock_acquire(victim)
                yield api.lock_release(victim)

        programs = {unit1[0].core_id: holder()}
        for core in unit1[1:]:
            programs[core.core_id] = worker()
        system.run_programs(programs)
        events = trace_events(system, tracer, include_cores=False)
        categories = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert "overflow" in categories


class TestWriteChromeTrace:
    def test_written_file_is_loadable_json(self, tiny_config, tmp_path):
        system, tracer = traced_run(tiny_config)
        path = tmp_path / "run.json"
        count = write_chrome_trace(str(path), system, tracer,
                                   metadata={"experiment": "unit-test"})
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert document["otherData"]["mechanism"] == "syncron"
        assert document["otherData"]["experiment"] == "unit-test"
        assert document["otherData"]["cores"] == len(system.cores)

    def test_works_on_server_mechanisms(self, tiny_config, tmp_path):
        system, tracer = traced_run(tiny_config, mechanism="central")
        path = tmp_path / "central.json"
        count = write_chrome_trace(str(path), system, tracer)
        assert count > 0
        document = json.loads(path.read_text())
        assert document["otherData"]["mechanism"] == "central"


def spin_run(tiny_config, elide: bool):
    """One rmw_spin lock workload whose polls exercise the wake log."""
    config = tiny_config.with_(elide_waits=elide)
    system = build_system(config, "rmw_spin")
    tracer = MessageTracer(system)
    lock = system.create_syncvar(unit=1, name="Lx")

    def worker():
        for _ in range(4):
            yield api.lock_acquire(lock)
            yield Compute(120)
            yield api.lock_release(lock)

    system.run_programs({c.core_id: worker() for c in system.cores})
    return system, tracer


class TestKernelTrack:
    """S1: counter tracks + instant events for the elision kernel."""

    def test_no_wake_log_no_kernel_track(self, tiny_config):
        from repro.sim.chrometrace import _kernel_events

        system = build_system(tiny_config, "syncron")
        assert system.sim.wake_log is None
        assert _kernel_events(system) == []

    def test_wake_instants_and_counter_samples(self, tiny_config):
        system, tracer = spin_run(tiny_config, elide=True)
        assert system.sim.elided_events > 0  # the run actually elided
        events = trace_events(system, tracer, include_cores=False)
        kernel = [e for e in events if e.get("pid") == 3]
        instants = [e for e in kernel if e.get("ph") == "i"]
        counters = [e for e in kernel if e.get("ph") == "C"]
        assert instants, "signal wakes must appear as instant events"
        # one counter sample per wake plus the final end-of-run sample
        assert len(counters) == len(instants) + 1
        for inst in instants:
            assert inst["cat"] == "kernel"
            assert inst["args"]["woken"] >= 1
            assert inst["args"]["channel"]
        # counter samples are monotonically non-decreasing and end at the
        # simulator's own totals
        processed = [c["args"]["events_processed"] for c in counters]
        elided = [c["args"]["elided_events"] for c in counters]
        assert processed == sorted(processed)
        assert elided == sorted(elided)
        assert processed[-1] == system.sim.events_processed
        assert elided[-1] == system.sim.elided_events
        assert counters[-1]["ts"] == pytest.approx(system.sim.now / 2.5)

    def test_counter_samples_are_live_not_final(self, tiny_config):
        """Mid-run samples must reflect progress *at the wake*, not the
        end-of-run totals (the instrumented drain commits per-cycle)."""
        system, tracer = spin_run(tiny_config, elide=True)
        events = trace_events(system, tracer, include_cores=False)
        counters = [e for e in events
                    if e.get("pid") == 3 and e.get("ph") == "C"]
        assert counters[0]["args"]["events_processed"] \
            < counters[-1]["args"]["events_processed"]


class TestTracerUnderElision:
    """S4: MessageTracer sees identical protocol traffic in both kernel
    modes — elision removes poll *events*, never SE *messages*."""

    @pytest.mark.parametrize("mechanism", ["rmw_spin", "syncron"])
    def test_records_identical_elide_on_off(self, tiny_config, mechanism):
        runs = {}
        for elide in (True, False):
            config = tiny_config.with_(elide_waits=elide)
            system = build_system(config, mechanism)
            tracer = MessageTracer(system)
            lock = system.create_syncvar(unit=1, name="Lx")

            def worker():
                for _ in range(3):
                    yield api.lock_acquire(lock)
                    yield Compute(80)
                    yield api.lock_release(lock)

            system.run_programs(
                {c.core_id: worker() for c in system.cores})
            runs[elide] = (system, tracer)
        elided_sys, elided_tr = runs[True]
        explicit_sys, explicit_tr = runs[False]
        if mechanism == "rmw_spin":
            assert elided_sys.sim.elided_events > 0
            assert elided_sys.sim.events_processed \
                < explicit_sys.sim.events_processed
        # no phantom or missing messages: same records, same order
        assert elided_tr.records == explicit_tr.records
        assert elided_tr.summary() == explicit_tr.summary()
