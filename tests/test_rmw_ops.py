"""Program-level atomic rmw (Sec. 4.4.1): ``RmwOp`` across mechanisms.

Atomicity is checked functionally: concurrent ``fetch_add`` streams must
never lose an update, and the old-value (fetch) semantics must let exactly
one core win a ``swap``-based claim.
"""

import pytest

from repro.core.rmw import RMW_OPS as RMW_FUNCTIONS
from repro.sim.program import Compute, RMW_OPS, RmwOp

from repro.testing import build_system

#: mechanisms with rmw hardware (everything but the bakery).
RMW_MECHANISMS = (
    "syncron", "syncron_flat", "central", "hier", "ideal", "rmw_spin",
)


class TestRmwOpValidation:
    def test_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            RmwOp("fetch_mul", 0x100)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            RmwOp("fetch_add", -8)

    def test_opcode_lists_agree(self):
        """The program-level opcode tuple and the SE ALU's function table
        must cover the same operations."""
        assert set(RMW_OPS) == set(RMW_FUNCTIONS)

    @pytest.mark.parametrize("op,current,operand,expected", [
        ("fetch_add", 5, 3, 8),
        ("fetch_and", 0b1100, 0b1010, 0b1000),
        ("fetch_or", 0b1100, 0b1010, 0b1110),
        ("fetch_xor", 0b1100, 0b1010, 0b0110),
        ("swap", 7, 42, 42),
        ("fetch_max", 5, 3, 5),
        ("fetch_max", 3, 5, 5),
        ("fetch_min", 5, 3, 3),
    ])
    def test_alu_functions(self, op, current, operand, expected):
        assert RMW_FUNCTIONS[op](current, operand) == expected


@pytest.mark.parametrize("mechanism", RMW_MECHANISMS)
class TestRmwAcrossMechanisms:
    def test_no_lost_updates(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        addr = system.addrmap.alloc(unit=0, nbytes=8)
        increments = 10

        def worker():
            for _ in range(increments):
                yield RmwOp("fetch_add", addr, 1)
                yield Compute(5)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert system.mechanism.rmw_value(addr) == increments * len(system.cores)

    def test_fetch_semantics_return_old_value(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        addr = system.addrmap.alloc(unit=0, nbytes=8)
        seen = []

        def worker():
            old = yield RmwOp("fetch_add", addr, 1)
            seen.append(old)

        system.run_programs({c.core_id: worker() for c in system.cores})
        # Each core observed a distinct pre-increment value: a permutation
        # of 0..N-1 proves the operations were serialized atomically.
        assert sorted(seen) == list(range(len(system.cores)))

    def test_swap_claim_has_exactly_one_winner(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        addr = system.addrmap.alloc(unit=1, nbytes=8)
        winners = []

        def worker(core_id):
            old = yield RmwOp("swap", addr, 1)
            if old == 0:
                winners.append(core_id)

        system.run_programs(
            {c.core_id: worker(c.core_id) for c in system.cores}
        )
        assert len(winners) == 1

    def test_fetch_max_converges(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        addr = system.addrmap.alloc(unit=0, nbytes=8)

        def worker(core_id):
            yield RmwOp("fetch_max", addr, core_id * 10)

        system.run_programs(
            {c.core_id: worker(c.core_id) for c in system.cores}
        )
        expected = max(c.core_id for c in system.cores) * 10
        assert system.mechanism.rmw_value(addr) == expected

    def test_rmw_ops_counted(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        addr = system.addrmap.alloc(unit=0, nbytes=8)

        def worker():
            yield RmwOp("fetch_add", addr, 1)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert system.stats.extra["rmw_ops"] == len(system.cores)


class TestRmwCostModel:
    def test_bakery_rejects_rmw(self, tiny_config):
        system = build_system(tiny_config, "bakery")
        addr = system.addrmap.alloc(unit=0, nbytes=8)

        def worker():
            yield RmwOp("fetch_add", addr, 1)

        with pytest.raises(NotImplementedError):
            system.run_programs({system.cores[0].core_id: worker()})

    def test_remote_rmw_crosses_link(self, tiny_config):
        """An rmw to another unit's address pays inter-unit traffic."""
        system = build_system(tiny_config, "syncron")
        addr = system.addrmap.alloc(unit=1, nbytes=8)
        core = system.cores_in_unit(0)[0]

        def worker():
            yield RmwOp("fetch_add", addr, 1)

        system.run_programs({core.core_id: worker()})
        assert system.stats.bytes_across_units > 0

    def test_local_rmw_stays_in_unit(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        addr = system.addrmap.alloc(unit=0, nbytes=8)
        core = system.cores_in_unit(0)[0]

        def worker():
            yield RmwOp("fetch_add", addr, 1)

        system.run_programs({core.core_id: worker()})
        assert system.stats.bytes_across_units == 0

    def test_rmw_cheaper_than_lock_protected_update(self, tiny_config):
        """The Sec. 4.4.1 motivation: one round trip beats lock+load+store."""
        from repro.core import api
        from repro.sim.program import Load, Store

        def run(style):
            system = build_system(tiny_config, "syncron")
            addr = system.addrmap.alloc(unit=0, nbytes=8)
            lock = system.create_syncvar(unit=0)

            def worker_rmw():
                for _ in range(6):
                    yield RmwOp("fetch_add", addr, 1)

            def worker_lock():
                for _ in range(6):
                    yield api.lock_acquire(lock)
                    yield Load(addr, cacheable=False)
                    yield Store(addr, cacheable=False)
                    yield api.lock_release(lock)

            worker = worker_rmw if style == "rmw" else worker_lock
            return system.run_programs(
                {c.core_id: worker() for c in system.cores}
            )

        assert run("rmw") < run("lock")

    def test_atomicity_under_contention_rmw_spin(self, tiny_config):
        """The remote-atomics baseline serializes through its atomic units
        even when every core targets the same line back-to-back."""
        system = build_system(tiny_config, "rmw_spin")
        addr = system.addrmap.alloc(unit=0, nbytes=8)

        def worker():
            for _ in range(20):
                yield RmwOp("fetch_add", addr, 1)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert system.mechanism.rmw_value(addr) == 20 * len(system.cores)
