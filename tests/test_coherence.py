"""Directory-MESI substrate and coherence-based locks (Table 1 / Fig. 2)."""

import pytest

from repro.coherence.driver import (
    CLoad,
    CoherentSystem,
    CRmw,
    CStore,
    IdealAcquire,
    IdealRelease,
    Pause,
)
from repro.coherence.locks import (
    HierarchicalTicketLock,
    tas_acquire,
    tas_release,
    ticket_acquire,
    ticket_release,
    ttas_acquire,
    ttas_release,
)
from repro.coherence.mesi import DirectoryMESI, LOAD, RMW_TAS, STORE
from repro.sim.config import cpu_numa, ndp_2_5d
from repro.sim.memmap import AddressMap
from repro.sim.network import Interconnect
from repro.sim.program import Compute
from repro.sim.stats import SystemStats


def make_mesi(num_units=2, cores_per_unit=2):
    stats = SystemStats()
    cfg = ndp_2_5d(num_units=num_units, cores_per_unit=cores_per_unit + 1,
                   client_cores_per_unit=cores_per_unit)
    amap = AddressMap(num_units, cfg.unit_memory_bytes, 64)
    inter = Interconnect(cfg, stats)
    units = {i: i // cores_per_unit for i in range(num_units * cores_per_unit)}
    return DirectoryMESI(cfg, stats, inter, amap, units), cfg


class TestMESIProtocol:
    def test_load_then_load_hits(self):
        mesi, cfg = make_mesi()
        miss, _ = mesi.access(0, 0x40, LOAD, now=0)
        hit, _ = mesi.access(0, 0x40, LOAD, now=miss)
        assert hit == cfg.l1_hit_cycles
        assert hit < miss

    def test_store_invalidates_sharers(self):
        mesi, cfg = make_mesi()
        mesi.access(0, 0x40, LOAD, now=0)
        mesi.access(1, 0x40, LOAD, now=100)
        mesi.access(2, 0x40, STORE, now=200, operand=7)
        # previous sharers must miss now
        lat0, val0 = mesi.access(0, 0x40, LOAD, now=300)
        assert lat0 > cfg.l1_hit_cycles
        assert val0 == 7

    def test_exclusive_owner_stores_hit(self):
        mesi, cfg = make_mesi()
        mesi.access(0, 0x40, STORE, now=0, operand=1)
        lat, _ = mesi.access(0, 0x40, STORE, now=50, operand=2)
        assert lat == cfg.l1_hit_cycles
        assert mesi.value(0x40) == 2

    def test_rmw_is_atomic_fetch(self):
        mesi, _ = make_mesi()
        _, old1 = mesi.access(0, 0x40, RMW_TAS, now=0)
        _, old2 = mesi.access(1, 0x40, RMW_TAS, now=100)
        assert old1 == 0
        assert old2 == 1  # second attempt sees the set flag

    def test_cross_unit_transfer_costs_more(self):
        mesi, _ = make_mesi()
        mesi.access(0, 0x40, STORE, now=0, operand=1)  # core 0, unit 0 owns
        same_unit, _ = mesi.access(1, 0x40, LOAD, now=1000)   # unit 0
        mesi2, _ = make_mesi()
        mesi2.access(0, 0x40, STORE, now=0, operand=1)
        cross_unit, _ = mesi2.access(2, 0x40, LOAD, now=1000)  # unit 1
        assert cross_unit > same_unit

    def test_contended_line_queues_at_directory(self):
        mesi, _ = make_mesi(num_units=2, cores_per_unit=4)
        first, _ = mesi.access(0, 0x40, STORE, now=0, operand=1)
        second, _ = mesi.access(1, 0x40, STORE, now=0, operand=2)
        assert second >= first


class TestCoherentLocks:
    def run_lock(self, lock_factory, cores=4, ops=10):
        system = CoherentSystem(cpu_numa())
        acquire, release = lock_factory(system)
        state = {"count": 0, "inside": 0, "max_inside": 0}

        def worker(core):
            for _ in range(ops):
                yield from acquire(core)
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"], state["inside"])
                state["count"] += 1
                yield Compute(15)
                state["inside"] -= 1
                yield from release(core)

        system.run_programs(
            {c.core_id: worker(c) for c in system.cores[:cores]}
        )
        assert state["max_inside"] == 1
        assert state["count"] == cores * ops
        return system

    def test_tas_lock_mutual_exclusion(self):
        def factory(system):
            addr = system.alloc_line(0)
            return (lambda c: tas_acquire(addr)), (lambda c: tas_release(addr))

        self.run_lock(factory)

    def test_ttas_lock_mutual_exclusion(self):
        def factory(system):
            addr = system.alloc_line(0)
            return (lambda c: ttas_acquire(addr)), (lambda c: ttas_release(addr))

        self.run_lock(factory)

    def test_ticket_lock_is_fifo_and_exclusive(self):
        def factory(system):
            nxt, serving = system.alloc_line(0), system.alloc_line(0)
            return (
                lambda c: ticket_acquire(nxt, serving),
                lambda c: ticket_release(serving),
            )

        self.run_lock(factory)

    def test_hierarchical_ticket_lock(self):
        def factory(system):
            htl = HierarchicalTicketLock(system, system.config.num_units)
            return (
                lambda c: htl.acquire(c.unit_id),
                lambda c: htl.release(c.unit_id),
            )

        self.run_lock(factory, cores=8)

    def test_ideal_lock_zero_cost(self):
        system = CoherentSystem(cpu_numa())
        state = {"count": 0, "inside": 0, "max_inside": 0}

        def worker():
            for _ in range(5):
                yield IdealAcquire(1)
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"], state["inside"])
                state["count"] += 1
                yield Compute(10)
                state["inside"] -= 1
                yield IdealRelease(1)

        system.run_programs({0: worker(), 1: worker()})
        assert state["max_inside"] == 1
        assert state["count"] == 10
        assert system.stats.bytes_across_units == 0

    def test_ideal_release_by_non_owner_raises(self):
        system = CoherentSystem(cpu_numa())

        def bad():
            yield IdealRelease(1)

        with pytest.raises(RuntimeError):
            system.run_programs({0: bad()})


class TestMotivationShapes:
    def test_table1_contention_and_numa_penalties(self):
        from repro.harness.motivation import table1

        rows = table1(ops_per_thread=40)
        ttas = rows[0]
        # throughput collapses with 14 contenders …
        assert ttas["14 threads single-socket"] < ttas["1 thread single-socket"]
        # … and crossing the socket hurts the 2-thread case.
        assert (ttas["2 threads different-socket"]
                < ttas["2 threads same-socket"])

    def test_fig2_mesi_lock_slowdown(self):
        from repro.harness.motivation import fig2

        result = fig2(ops_per_core=6)
        for row in result["a_cores"] + result["b_units"]:
            assert row["slowdown"] > 1.3, "mesi-lock must visibly hurt"
