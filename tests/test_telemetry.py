"""Run telemetry: the bus, its instrumentation, and the operator surface.

Contracts pinned here:

1. Bus mechanics — counters/gauges/spans/histograms aggregate correctly,
   the JSONL event log and snapshot exports are well-formed, and the
   Prometheus rendering parses as text exposition format.
2. Off-by-default — ``get_telemetry()`` is a no-op bus unless a session
   enabled one, and sessions restore the previous bus on exit.
3. Physics isolation — enabling telemetry changes *no* simulated counter;
   only the reserved ``telemetry.*`` keys appear, they are stripped from
   every record the result store publishes, and the in-process caller
   still sees them.
4. Operator surface — worker heartbeats round-trip through ``repro top``'s
   backend, and the ``top`` / ``report`` CLI one-shot paths work end to
   end.
5. Regression gate — ``benchmarks/check_regression.py`` passes the
   committed baselines against themselves, fails degraded metrics, and
   skips parallel-speedup gates on a one-cpu box.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.harness import topview
from repro.harness.reporting import format_table
from repro.harness.runner import execute_spec, execution_options, run_specs
from repro.harness.specs import RunSpec
from repro.harness.store import Heartbeat, ShardedDirStore, read_heartbeats
from repro.telemetry import (
    HISTOGRAM_BUCKETS,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    merge_snapshots,
    strip_volatile_stats,
    telemetry_session,
)

SMALL = {"num_units": 2, "cores_per_unit": 4, "client_cores_per_unit": 3}


def small_spec(**args) -> RunSpec:
    defaults = {"primitive": "lock", "interval": 120, "rounds": 6}
    defaults.update(args)
    return RunSpec.make("primitive", mechanism="syncron", args=defaults,
                       overrides=SMALL)


# ----------------------------------------------------------------------
# 1. Bus mechanics
# ----------------------------------------------------------------------
class TestBus:
    def test_counters_gauges_accumulate(self):
        tel = Telemetry()
        tel.count("store.hits")
        tel.count("store.hits", 4)
        tel.gauge("sweep.remaining", 9)
        tel.gauge("sweep.remaining", 3)
        snap = tel.snapshot()
        assert snap["counters"]["store.hits"] == 5
        assert snap["gauges"]["sweep.remaining"] == 3

    def test_span_aggregates_count_minmax_errors(self):
        tel = Telemetry()
        with tel.span("work"):
            pass
        with pytest.raises(RuntimeError):
            with tel.span("work"):
                raise RuntimeError("boom")
        cell = tel.snapshot()["spans"]["work"]
        assert cell["count"] == 2
        assert cell["errors"] == 1
        assert 0 <= cell["min_s"] <= cell["max_s"] <= cell["total_s"]

    def test_histogram_buckets_and_moments(self):
        tel = Telemetry()
        tel.observe("lat", 0.0002)   # second bucket (<= 0.0003)
        tel.observe("lat", 2.0)      # <= 3.0 bucket
        tel.observe("lat", 99.0)     # +inf
        hist = tel.snapshot()["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(101.0002)
        assert hist["inf"] == 1
        assert hist["buckets"]["0.0003"] == 1
        assert hist["buckets"]["3.0"] == 1

    def test_event_log_is_jsonl_per_worker_and_pid(self, tmp_path):
        tel = Telemetry(str(tmp_path), worker="w/1")
        tel.event("hello", x=1)
        tel.event("hello", x=2)
        tel.close()
        files = list(tmp_path.glob("events-*.jsonl"))
        assert len(files) == 1
        # the worker id is sanitized and the pid appended (fork safety)
        assert files[0].name.startswith("events-w_1-")
        records = [json.loads(line)
                   for line in files[0].read_text().splitlines()]
        assert [r["x"] for r in records] == [1, 2]
        assert all(r["event"] == "hello" and r["worker"] == "w/1"
                   for r in records)

    def test_export_writes_snapshot_json(self, tmp_path):
        tel = Telemetry(str(tmp_path), worker="w1")
        tel.count("c", 2)
        path = tel.export()
        loaded = json.loads(Path(path).read_text())
        assert loaded["counters"]["c"] == 2
        assert loaded["worker"] == "w1"

    def test_prometheus_exposition_shape(self):
        tel = Telemetry(worker="w1")
        tel.count("store.hits", 3)
        tel.gauge("sweep.remaining", 7)
        with tel.span("spec.execute"):
            pass
        tel.observe("store.publish_seconds", 0.002)
        text = tel.prometheus()
        assert 'repro_store_hits_total{worker="w1"} 3' in text
        assert 'repro_sweep_remaining{worker="w1"} 7' in text
        assert 'repro_spec_execute_seconds_count{worker="w1"} 1' in text
        # histogram: cumulative buckets ending in +Inf == count
        assert 'le="+Inf"' in text
        inf_line = [l for l in text.splitlines() if 'le="+Inf"' in l][0]
        assert inf_line.endswith(" 1")
        # every sample line is "name{labels} value"
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            float(value)
            assert name

    def test_null_bus_is_inert(self):
        null = NullTelemetry()
        assert not null.enabled
        with null.span("x", anything=1):
            null.count("c")
            null.gauge("g", 1)
            null.observe("h", 1.0)
            null.event("e")
        assert null.snapshot() == {}
        assert null.export() is None
        assert null.prometheus() == ""


# ----------------------------------------------------------------------
# 2. Sessions & defaults
# ----------------------------------------------------------------------
class TestSession:
    def test_disabled_by_default(self):
        assert get_telemetry().enabled is False

    def test_session_enables_exports_and_restores(self, tmp_path):
        before = get_telemetry()
        with telemetry_session(str(tmp_path), worker="s1") as tel:
            assert get_telemetry() is tel
            assert tel.enabled
            tel.count("c")
        assert get_telemetry() is before
        assert list(tmp_path.glob("snapshot-*.json"))
        events = list(tmp_path.glob("events-*.jsonl"))
        names = [json.loads(line)["event"]
                 for line in events[0].read_text().splitlines()]
        assert names[0] == "session.start" and names[-1] == "session.end"

    def test_session_without_directory_aggregates_only(self):
        with telemetry_session() as tel:
            tel.count("c", 2)
            assert tel.snapshot()["counters"]["c"] == 2
            assert tel.export() is None

    def test_strip_volatile_stats(self):
        stats = {"cycles": 10, "telemetry.wall_seconds": 0.5}
        stripped = strip_volatile_stats(stats)
        assert stripped == {"cycles": 10}
        clean = {"cycles": 10, "kernel.events_processed": 4}
        # kernel.* is effort but reproducible: kept; same object returned
        assert strip_volatile_stats(clean) is clean

    def test_merge_snapshots(self):
        a = Telemetry(worker="a")
        a.count("c", 1)
        a.gauge("g", 10)
        with a.span("s"):
            pass
        a.observe("h", 0.01)
        b = Telemetry(worker="b")
        b.count("c", 2)
        b.gauge("g", 20)
        with b.span("s"):
            pass
        b.observe("h", 5.0)
        snap_a, snap_b = a.snapshot(), b.snapshot()
        snap_b["written_at"] = snap_a["written_at"] + 10  # b is newer
        merged = merge_snapshots([snap_a, snap_b])
        assert merged["workers"] == ["a", "b"]
        assert merged["counters"]["c"] == 3
        assert merged["gauges"]["g"] == 20  # latest write wins
        assert merged["spans"]["s"]["count"] == 2
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(5.01)


# ----------------------------------------------------------------------
# 3. Physics isolation
# ----------------------------------------------------------------------
class TestPhysicsIsolation:
    def test_profiled_run_is_bit_identical_plus_telemetry_keys(self):
        spec = small_spec()
        plain = execute_spec(spec)["result"]
        with telemetry_session():
            profiled = execute_spec(spec)["result"]
        tel_keys = {k for k in profiled["stats"]
                    if k.startswith("telemetry.")}
        assert tel_keys  # the wall-clock profile was attached
        assert "telemetry.wall_seconds" in tel_keys
        assert "telemetry.events_per_sec" in tel_keys
        stripped = dict(profiled)
        stripped["stats"] = {k: v for k, v in profiled["stats"].items()
                             if k not in tel_keys}
        assert stripped == plain  # physics bit-identical
        # attribution fractions cover the whole sampled run
        attr = [v for k, v in profiled["stats"].items()
                if k.startswith("telemetry.attr.")]
        assert attr and sum(attr) == pytest.approx(1.0)

    def test_bus_counters_track_simulation(self):
        with telemetry_session() as tel:
            execute_spec(small_spec())
            snap = tel.snapshot()
        assert snap["counters"]["sim.runs"] == 1
        assert snap["counters"]["sim.events_processed"] > 0
        assert snap["spans"]["spec.execute"]["count"] == 1

    def test_store_records_never_carry_telemetry_keys(self, tmp_path):
        spec = small_spec(rounds=5)
        with telemetry_session():
            with execution_options(cache=True,
                                   store=f"dir:{tmp_path}/cache"):
                results = run_specs([spec])
        # caller still sees the wall-clock profile...
        assert any(k.startswith("telemetry.")
                   for k in results[0].stats)
        # ...but the durable record is reproducible content only
        store = ShardedDirStore(tmp_path / "cache")
        record = store.get(spec.cache_key())
        assert record is not None
        assert not any(k.startswith("telemetry.")
                       for k in record["result"]["stats"])

    def test_store_counts_hits_and_misses(self, tmp_path):
        spec = small_spec(rounds=4)
        with telemetry_session() as tel:
            with execution_options(cache=True,
                                   store=f"dir:{tmp_path}/cache"):
                run_specs([spec])
                run_specs([spec])  # warm: served from the store
            counters = tel.snapshot()["counters"]
        assert counters["store.misses"] >= 1
        assert counters["store.publishes"] == 1
        assert counters["store.hits"] >= 1


# ----------------------------------------------------------------------
# 4. Heartbeats & the top view
# ----------------------------------------------------------------------
class TestTopView:
    def _beat(self, root, worker, now, **fields):
        hb = Heartbeat(root, worker)
        defaults = {"worker": worker, "pid": 1, "started_at": now - 10.0,
                    "phase": "execute", "executed": 2, "reclaimed": 0,
                    "completed_elsewhere": 1, "remaining": 3, "total": 6,
                    "kernel_events": 5000, "done": False}
        defaults.update(fields)
        hb.update(**defaults)
        # pin the timestamp the test controls
        path = Path(root) / "heartbeats" / f"{worker}.json"
        data = json.loads(path.read_text())
        data["time"] = fields.get("time", now)
        path.write_text(json.dumps(data))

    def test_heartbeat_roundtrip(self, tmp_path):
        hb = Heartbeat(tmp_path, "w1")
        hb.update(phase="scan", executed=0)
        hb.update(phase="execute", executed=2)
        (loaded,) = read_heartbeats(tmp_path)
        assert loaded["worker"] == "w1"
        assert loaded["phase"] == "execute"
        assert loaded["executed"] == 2  # merged across updates
        assert loaded["time"] > 0

    def test_torn_heartbeat_is_skipped(self, tmp_path):
        Heartbeat(tmp_path, "good").update(phase="scan")
        (tmp_path / "heartbeats" / "torn.json").write_text("{not json")
        workers = read_heartbeats(tmp_path)
        assert [w["worker"] for w in workers] == ["good"]

    def test_gather_totals_and_states(self, tmp_path):
        now = 1000.0
        self._beat(tmp_path, "w1", now, remaining=3)
        self._beat(tmp_path, "w2", now, remaining=4, done=True)
        self._beat(tmp_path, "w3", now, time=now - 60.0)  # stale
        snap = topview.gather(tmp_path, now=now)
        assert snap["found"]
        states = {w["worker"]: w["state"] for w in snap["workers"]}
        assert states["w2"] == "done"
        assert states["w3"] == "stale"
        assert states["w1"] == "execute"
        totals = snap["totals"]
        assert totals["workers"] == 3
        assert totals["done"] == 1
        # min across workers' views is the tightest global bound
        assert totals["remaining"] == 3
        assert totals["executed"] == 6
        assert not topview.finished(snap)
        rendered = topview.render(snap)
        assert "w1" in rendered and "ETA" in rendered

    def test_finished_and_not_found(self, tmp_path):
        empty = topview.gather(tmp_path / "nothing", now=0.0)
        assert not empty["found"] and not topview.finished(empty)
        assert "no worker heartbeats" in topview.render(empty)
        now = 50.0
        self._beat(tmp_path, "w1", now, done=True, remaining=0)
        snap = topview.gather(tmp_path, now=now)
        assert topview.finished(snap)


# ----------------------------------------------------------------------
# 5. CLI: --telemetry / top / report
# ----------------------------------------------------------------------
class TestCli:
    def test_run_with_telemetry_then_report(self, tmp_path, capsys):
        tel_dir = tmp_path / "tel"
        rc = cli.main([
            "sweep", "--primitives", "lock", "--mechanisms", "syncron",
            "--rounds", "4", "--interval", "120",
            "--store", f"dir:{tmp_path}/cache",
            "--telemetry", str(tel_dir),
        ])
        assert rc == 0
        assert list(tel_dir.glob("snapshot-*.json"))
        assert list(tel_dir.glob("events-*.jsonl"))
        capsys.readouterr()
        assert cli.main(["report", str(tel_dir)]) == 0
        out = capsys.readouterr().out
        assert "spec.execute" in out
        assert "sim.events_processed" in out
        assert "session.start" in out

    def test_report_empty_dir_exits_2(self, tmp_path, capsys):
        assert cli.main(["report", str(tmp_path)]) == 2

    def test_top_once_renders_heartbeats(self, tmp_path, capsys,
                                         monkeypatch):
        Heartbeat(tmp_path, "w1").update(
            worker="w1", started_at=0.0, phase="execute", executed=1,
            reclaimed=0, completed_elsewhere=0, remaining=2, total=3,
            kernel_events=100, done=False)
        rc = cli.main(["top", "--store", f"shared:{tmp_path}", "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "w1" in out and "workers @" in out

    def test_top_once_missing_root_exits_1(self, tmp_path, capsys):
        rc = cli.main(["top", "--store",
                       f"shared:{tmp_path}/nothing", "--once"])
        assert rc == 1

    def test_top_memory_store_exits_2(self, capsys):
        assert cli.main(["top", "--store", "memory:", "--once"]) == 2

    def test_telemetry_disabled_after_cli_run(self, tmp_path):
        cli.main([
            "sweep", "--primitives", "lock", "--mechanisms", "syncron",
            "--rounds", "3", "--interval", "120", "--no-cache",
            "--telemetry", str(tmp_path / "tel"),
        ])
        assert get_telemetry().enabled is False


# ----------------------------------------------------------------------
# 6. The regression gate
# ----------------------------------------------------------------------
REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_gate():
    path = REPO_ROOT / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return _load_gate()


class TestRegressionGate:
    def test_committed_baselines_pass_against_themselves(self, gate,
                                                         capsys):
        assert gate.main([]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_degraded_metrics_fail(self, gate, tmp_path, capsys):
        for name in gate.GATES:
            src = REPO_ROOT / name
            doc = json.loads(src.read_text())
            (tmp_path / name).write_text(json.dumps(doc))
        kernel = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        kernel["kernel_microbench"]["overall"]["speedup"] = 0.5
        kernel["end_to_end"]["simulated_cycles"] += 1
        (tmp_path / "BENCH_kernel.json").write_text(json.dumps(kernel))
        sweep = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        sweep["warm_workers1"]["simulations_executed"] = 2
        (tmp_path / "BENCH_sweep.json").write_text(json.dumps(sweep))
        assert gate.main(["--fresh", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "kernel_microbench.overall.speedup" in out
        assert "end_to_end.simulated_cycles" in out
        assert "warm_workers1.simulations_executed" in out

    def test_cpu1_skips_parallel_speedup_gate(self, gate, capsys):
        base = json.loads((REPO_ROOT / "BENCH_sweep.json").read_text())
        assert base["cpu_count"] == 1  # the committed baseline ran on 1 cpu
        assert gate.main([]) == 0
        out = capsys.readouterr().out
        assert "speedup_vs_serial" in out
        line = [l for l in out.splitlines()
                if "workers.4.speedup_vs_serial" in l][0]
        assert "[SKIP]" in line and "not measurable" in line

    def test_missing_fresh_artifact_skips(self, gate, tmp_path, capsys):
        assert gate.main(["--fresh", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("benchmark not run") == len(gate.GATES)

    def test_wildcard_expansion(self, gate):
        doc = {"a": {"x": {"v": 1}, "y": {"v": 2}}, "b": 3}
        assert gate.expand_paths(doc, "a.*.v") == ["a.x.v", "a.y.v"]
        assert gate.expand_paths(doc, "a.z.v") == []
        assert gate.lookup(doc, "a.y.v") == 2
        assert gate.lookup(doc, "b.c") is gate._MISSING

    def test_json_report(self, gate, capsys):
        assert gate.main(["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["failed"] == 0
        assert report["passed"] > 0


# ----------------------------------------------------------------------
# 7. format_table column discovery (heterogeneous rows)
# ----------------------------------------------------------------------
class TestFormatTable:
    def test_columns_are_union_in_first_seen_order(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}, {"c": 4}]
        out = format_table(rows)
        header = out.splitlines()[0].split()
        assert header == ["a", "b", "c"]
        assert "4" in out  # the c-only row renders

    def test_private_keys_hidden_and_empty_rows_ok(self):
        assert "no rows" in format_table([])
        out = format_table([{"_hidden": 1, "x": 2}])
        assert "_hidden" not in out and "x" in out
        assert "no columns" in format_table([{"_only": 1}])
