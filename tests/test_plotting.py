"""Terminal plotting: pure string builders, so properties are checkable."""

import pytest
from hypothesis import given, strategies as st

from repro.harness.plotting import (
    BAR_CHAR,
    bar_chart,
    grouped_bar_chart,
    line_chart,
    sparkline,
    stacked_bar_chart,
)


class TestBarChart:
    def test_largest_value_fills_width(self):
        chart = bar_chart({"a": 1.0, "b": 4.0}, width=20)
        lines = chart.splitlines()
        assert lines[1].count(BAR_CHAR) == 20
        assert lines[0].count(BAR_CHAR) == 5

    def test_title_is_first_line(self):
        chart = bar_chart({"a": 1.0}, title="speedup")
        assert chart.splitlines()[0] == "speedup"

    def test_empty_input(self):
        assert "(no data)" in bar_chart({}, title="t")

    def test_pinned_scale_keeps_bars_comparable(self):
        solo = bar_chart({"a": 2.0}, width=10, max_value=4.0)
        assert solo.splitlines()[0].count(BAR_CHAR) == 5

    def test_values_beyond_scale_are_clamped(self):
        chart = bar_chart({"a": 10.0}, width=10, max_value=4.0)
        assert chart.splitlines()[0].count(BAR_CHAR) == 10

    def test_labels_aligned(self):
        chart = bar_chart({"x": 1.0, "longer": 2.0}, width=4)
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    @given(st.dictionaries(
        st.text(st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=8),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=1, max_size=8,
    ))
    def test_never_overflows_width(self, items):
        width = 24
        for line in bar_chart(items, width=width).splitlines():
            start = line.index("|")
            end = line.index("|", start + 1)
            assert end - start - 1 == width


class TestLineChart:
    ROWS = [
        {"x": 1, "a": 1.0, "b": 2.0},
        {"x": 10, "a": 2.0, "b": 1.0},
        {"x": 100, "a": 3.0, "b": 0.5},
    ]

    def test_contains_series_marks_and_legend(self):
        chart = line_chart(self.ROWS, "x", ("a", "b"))
        assert "o=a" in chart
        assert "x=b" in chart
        assert "o" in chart
        assert "x" in chart

    def test_log_x_spreads_decades(self):
        chart = line_chart(self.ROWS, "x", ("a",), log_x=True, width=41)
        grid_lines = [l for l in chart.splitlines() if "|" in l]
        # With log x the x=10 point lands mid-grid, not at 9% of the width.
        marked_cols = sorted(
            line.index("o", line.index("|")) - line.index("|") - 1
            for line in grid_lines if "o" in line
        )
        assert marked_cols[1] == pytest.approx(20, abs=2)

    def test_colliding_points_become_plus(self):
        rows = [{"x": 1, "a": 1.0, "b": 1.0}]
        chart = line_chart(rows, "a" and "x", ("a", "b"))
        assert "+" in chart

    def test_missing_series_values_skipped(self):
        rows = [{"x": 1, "a": 1.0}, {"x": 2}]
        chart = line_chart(rows, "x", ("a",))
        assert "o" in chart

    def test_empty_rows(self):
        assert "(no data)" in line_chart([], "x", ("a",), title="t")

    def test_constant_series_does_not_crash(self):
        rows = [{"x": 1, "a": 5.0}, {"x": 2, "a": 5.0}]
        chart = line_chart(rows, "x", ("a",))
        assert "o" in chart


class TestSparkline:
    def test_monotonic_values_monotonic_glyphs(self):
        line = sparkline([1, 2, 3, 4])
        assert line == "".join(sorted(line))

    def test_constant_series(self):
        assert len(sparkline([3, 3, 3])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_length_matches_input(self, values):
        assert len(sparkline(values)) == len(values)


class TestStackedBars:
    ROWS = [
        {"app": "bfs", "cache": 1.0, "network": 2.0, "memory": 1.0},
        {"app": "cc", "cache": 0.0, "network": 0.0, "memory": 4.0},
    ]

    def test_bar_width_fixed(self):
        chart = stacked_bar_chart(self.ROWS, "app", ("cache", "network", "memory"),
                                  width=16)
        bars = [l for l in chart.splitlines() if l.rstrip().endswith("|")]
        for bar in bars:
            start = bar.index("|")
            assert bar.index("|", start + 1) - start - 1 == 16

    def test_proportions(self):
        chart = stacked_bar_chart(self.ROWS, "app", ("cache", "network", "memory"),
                                  width=16)
        bfs_bar = next(l for l in chart.splitlines() if l.startswith("bfs"))
        assert bfs_bar.count("#") == 4   # cache: 1/4 of 16
        assert bfs_bar.count("=") == 8   # network: 2/4
        cc_bar = next(l for l in chart.splitlines() if l.startswith("cc"))
        assert cc_bar.count("+") == 16   # memory only

    def test_zero_total_row_renders_empty(self):
        rows = [{"app": "x", "cache": 0.0, "network": 0.0}]
        chart = stacked_bar_chart(rows, "app", ("cache", "network"), width=8)
        assert "|        |" in chart

    def test_legend_present(self):
        chart = stacked_bar_chart(self.ROWS, "app", ("cache", "network"))
        assert "#=cache" in chart
        assert "==network" in chart


class TestDegenerateSeries:
    """Empty/single-point/non-numeric series must render, never raise —
    a sweep filtered down to one cell hits all of these."""

    def test_single_point_line_chart(self):
        chart = line_chart([{"x": 5, "a": 1.0}], "x", ("a",), title="one")
        assert "o" in chart and "(no data)" not in chart

    def test_single_point_log_axis(self):
        chart = line_chart([{"x": 100, "a": 2.0}], "x", ("a",), log_x=True)
        assert "o" in chart

    def test_log_axis_with_zero_x_falls_back_to_linear(self):
        rows = [{"x": 0, "a": 1.0}, {"x": 10, "a": 2.0}]
        chart = line_chart(rows, "x", ("a",), log_x=True)
        assert "o" in chart

    def test_non_numeric_x_values_are_skipped(self):
        rows = [{"x": "bfs.wk", "a": 1.0}, {"x": 2, "a": 2.0}]
        chart = line_chart(rows, "x", ("a",))
        assert "o" in chart
        assert "(no data)" in line_chart([{"x": "bfs.wk", "a": 1.0}], "x", ("a",))

    def test_rows_missing_the_x_key_are_skipped(self):
        assert "(no data)" in line_chart([{"a": 1.0}], "x", ("a",))

    def test_bar_chart_with_nan_and_inf_values(self):
        chart = bar_chart({"a": float("nan"), "b": float("inf"), "c": 2.0})
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[2].count(BAR_CHAR) > 0  # the finite bar still renders

    def test_bar_chart_all_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "(no data)" not in chart

    def test_single_bar(self):
        assert bar_chart({"only": 3.0}).count(BAR_CHAR) == 40

    def test_sparkline_drops_non_finite(self):
        assert len(sparkline([float("nan"), 1.0, 2.0])) == 2

    def test_grouped_bars_tolerate_non_numeric_cells(self):
        rows = [{"g": "x", "a": "oops", "b": 1.0}]
        chart = grouped_bar_chart(rows, "g", ("a", "b"))
        assert "b" in chart

    def test_stacked_bars_tolerate_non_finite_components(self):
        rows = [{"g": "x", "a": float("inf"), "b": 1.0}]
        chart = stacked_bar_chart(rows, "g", ("a", "b"), width=8)
        assert chart.splitlines()[-1].count("=") == 8

    def test_single_row_grouped_bars(self):
        chart = grouped_bar_chart([{"g": "x", "a": 1.0}], "g", ("a",))
        assert BAR_CHAR in chart


class TestGroupedBars:
    def test_shared_scale_across_groups(self):
        rows = [
            {"app": "a", "hier": 1.0, "syncron": 2.0},
            {"app": "b", "hier": 4.0, "syncron": 4.0},
        ]
        chart = grouped_bar_chart(rows, "app", ("hier", "syncron"), width=20)
        lines = chart.splitlines()
        # group a's syncron bar (2.0) is half of group b's (4.0 -> full 20).
        a_syncron = next(
            l for l in lines if l.startswith("syncron") and "| 2" in l
        )
        assert a_syncron.count(BAR_CHAR) == 10
