"""Unit tests for clock, config, address map, DRAM, cache, and network."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.cache import L1Cache
from repro.sim.clock import (
    CORE_CLOCK,
    SE_CLOCK,
    core_cycles_from_ns,
    core_cycles_from_se_cycles,
    seconds_from_core_cycles,
)
from repro.sim.config import DDR4, HBM, HMC, SystemConfig, cpu_numa, ndp_2_5d
from repro.sim.dram import DramDevice
from repro.sim.memmap import AddressMap
from repro.sim.network import Crossbar, Interconnect, Link, LoadEstimator
from repro.sim.stats import SystemStats


class TestClock:
    def test_core_clock_is_2_5_ghz(self):
        assert CORE_CLOCK.ghz == 2.5
        assert core_cycles_from_ns(40.0) == 100  # the 40 ns link

    def test_se_cycles_convert_through_1ghz(self):
        # 12 SE cycles @1GHz = 12 ns = 30 core cycles (the paper's service).
        assert core_cycles_from_se_cycles(12) == 30

    def test_rounding_is_up(self):
        assert core_cycles_from_ns(1.0) == 3  # 2.5 cycles -> 3

    def test_seconds_roundtrip(self):
        assert seconds_from_core_cycles(2_500_000_000) == pytest.approx(1.0)

    def test_se_clock_period(self):
        assert SE_CLOCK.period_ns == pytest.approx(1.0)


class TestConfig:
    def test_default_matches_paper_table5(self):
        cfg = ndp_2_5d()
        assert cfg.num_units == 4
        assert cfg.cores_per_unit == 16
        assert cfg.client_cores_per_unit == 15
        assert cfg.st_entries == 64
        assert cfg.indexing_counters == 256
        assert cfg.memory.name == "HBM"
        assert cfg.link_latency_cycles == 100

    def test_with_functional_update(self):
        cfg = ndp_2_5d().with_(num_units=2)
        assert cfg.num_units == 2
        assert ndp_2_5d().num_units == 4  # original untouched

    def test_validation_rejects_bad_topology(self):
        with pytest.raises(ValueError):
            ndp_2_5d(num_units=0).validate()
        with pytest.raises(ValueError):
            ndp_2_5d(client_cores_per_unit=0).validate()
        with pytest.raises(ValueError):
            ndp_2_5d(st_entries=0).validate()

    def test_memory_presets_have_ordered_latencies(self):
        # HBM is fastest, DDR4 slowest (Table 5 timings).
        assert HBM.row_miss_cycles < HMC.row_miss_cycles
        assert HBM.row_miss_cycles < DDR4.row_miss_cycles

    def test_cpu_numa_is_two_sockets(self):
        cfg = cpu_numa()
        assert cfg.num_units == 2
        assert cfg.client_cores_per_unit == 14


class TestAddressMap:
    def test_unit_of_respects_striping(self):
        amap = AddressMap(4, 1 << 20)
        assert amap.unit_of(0) == 0
        assert amap.unit_of((1 << 20) + 5) == 1
        assert amap.unit_of(4 * (1 << 20) - 1) == 3

    def test_out_of_range_address_raises(self):
        amap = AddressMap(2, 1 << 20)
        with pytest.raises(ValueError):
            amap.unit_of(2 << 20)

    def test_alloc_returns_distinct_ranges(self):
        amap = AddressMap(2, 1 << 20)
        a = amap.alloc(0, 64)
        b = amap.alloc(0, 64)
        assert b >= a + 64

    def test_alloc_line_is_line_aligned(self):
        amap = AddressMap(2, 1 << 20, line_bytes=64)
        amap.alloc(0, 10)
        addr = amap.alloc_line(0)
        assert addr % 64 == 0

    def test_exhaustion_raises(self):
        amap = AddressMap(1, 128)
        amap.alloc(0, 100)
        with pytest.raises(MemoryError):
            amap.alloc(0, 100)

    def test_striped_array_round_robins_units(self):
        amap = AddressMap(4, 1 << 20)
        addrs = amap.alloc_striped_array(8, 8)
        units = [amap.unit_of(a) for a in addrs]
        assert units == [0, 1, 2, 3, 0, 1, 2, 3]

    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                    max_size=30))
    def test_allocations_never_overlap(self, sizes):
        amap = AddressMap(1, 1 << 20)
        ranges = []
        for size in sizes:
            base = amap.alloc(0, size)
            for other_base, other_size in ranges:
                assert base >= other_base + other_size or base + size <= other_base
            ranges.append((base, size))


class TestDram:
    def test_row_hit_is_faster_than_miss(self):
        dram = DramDevice(HBM, SystemStats())
        first = dram.access(0x0, is_write=False, now=0)
        second = dram.access(0x8, is_write=False, now=10_000)
        assert second < first  # same row, now open

    def test_bank_conflict_queues(self):
        dram = DramDevice(HBM, SystemStats())
        lat1 = dram.access(0x0, is_write=False, now=0)
        lat2 = dram.access(0x0, is_write=False, now=0)
        assert lat2 > lat1  # second waits for the bank

    def test_write_holds_bank_longer(self):
        stats = SystemStats()
        dram = DramDevice(HBM, stats)
        dram.access(0x0, is_write=True, now=0)
        after_write = dram.access(0x0, is_write=False, now=1)
        dram2 = DramDevice(HBM, SystemStats())
        dram2.access(0x0, is_write=False, now=0)
        after_read = dram2.access(0x0, is_write=False, now=1)
        assert after_write > after_read

    def test_counters(self):
        stats = SystemStats()
        dram = DramDevice(HBM, stats)
        dram.access(0x0, is_write=False, now=0)
        dram.access(0x1000000, is_write=True, now=0)
        assert stats.dram_reads == 1
        assert stats.dram_writes == 1

    def test_different_rows_map_to_different_banks(self):
        dram = DramDevice(HBM, SystemStats())
        lat1 = dram.access(0, is_write=False, now=0)
        # next row stripes to the next bank: no queueing delay.
        lat2 = dram.access(HBM.row_size_bytes, is_write=False, now=0)
        assert lat2 == lat1


class TestCache:
    def make(self, stats=None):
        return L1Cache(16 * 1024, 2, 64, stats or SystemStats(), hit_cycles=4)

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.access(0x40, is_write=False).hit
        assert cache.access(0x40, is_write=False).hit

    def test_same_line_different_words_hit(self):
        cache = self.make()
        cache.access(0x40, is_write=False)
        assert cache.access(0x78, is_write=False).hit

    def test_lru_eviction_within_set(self):
        cache = self.make()
        num_sets = cache.num_sets
        line = 64
        a, b, c = 0, num_sets * line, 2 * num_sets * line  # same set
        cache.access(a, is_write=False)
        cache.access(b, is_write=False)
        cache.access(a, is_write=False)  # a is now MRU
        cache.access(c, is_write=False)  # evicts b (LRU)
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_dirty_victim_reported_for_writeback(self):
        cache = self.make()
        num_sets = cache.num_sets
        line = 64
        cache.access(0, is_write=True)  # dirty
        cache.access(num_sets * line, is_write=False)
        result = cache.access(2 * num_sets * line, is_write=False)
        assert result.writeback_line == 0

    def test_clean_victim_has_no_writeback(self):
        cache = self.make()
        num_sets = cache.num_sets
        cache.access(0, is_write=False)
        cache.access(num_sets * 64, is_write=False)
        result = cache.access(2 * num_sets * 64, is_write=False)
        assert result.writeback_line is None

    def test_invalidate(self):
        cache = self.make()
        cache.access(0x40, is_write=False)
        assert cache.invalidate(0x40)
        assert not cache.contains(0x40)
        assert not cache.invalidate(0x40)

    def test_flush_all(self):
        cache = self.make()
        for i in range(10):
            cache.access(i * 64, is_write=False)
        assert cache.flush_all() == 10
        assert cache.lines_resident == 0

    def test_stats_count_hits_and_misses(self):
        stats = SystemStats()
        cache = self.make(stats)
        cache.access(0x40, is_write=False)
        cache.access(0x40, is_write=False)
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            L1Cache(1000, 3, 64, SystemStats())

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 20), min_size=1,
                    max_size=200))
    def test_resident_lines_never_exceed_capacity(self, addrs):
        cache = self.make()
        capacity = cache.num_sets * cache.ways
        for addr in addrs:
            cache.access(addr, is_write=False)
            assert cache.lines_resident <= capacity


class TestNetwork:
    def test_local_latency_includes_arbiter_and_hops(self):
        cfg = ndp_2_5d()
        stats = SystemStats()
        xbar = Crossbar(cfg, stats, 0)
        latency = xbar.traverse(0, 16)
        assert latency >= cfg.arbiter_cycles + cfg.local_hops * cfg.hop_cycles

    def test_md1_wait_grows_with_load(self):
        cfg = ndp_2_5d()
        xbar = Crossbar(cfg, SystemStats(), 0)
        idle = xbar.traverse(0, 16)
        # hammer the crossbar, then measure again
        for t in range(1, 2000):
            xbar.traverse(t, 64)
        loaded = xbar.traverse(2000, 16)
        assert loaded >= idle

    def test_link_adds_latency_and_serialization(self):
        cfg = ndp_2_5d()
        stats = SystemStats()
        link = Link(cfg, stats)
        latency = link.transfer(0, 64)
        assert latency >= cfg.link_latency_cycles
        assert stats.bytes_across_units == 64

    def test_link_queues_back_to_back_transfers(self):
        cfg = ndp_2_5d()
        link = Link(cfg, SystemStats())
        first = link.transfer(0, 6400)
        second = link.transfer(0, 6400)
        assert second > first

    def test_interconnect_remote_is_slower_than_local(self):
        cfg = ndp_2_5d()
        stats = SystemStats()
        inter = Interconnect(cfg, stats)
        local = inter.transfer_latency(0, 0, 0, 64)
        remote = inter.transfer_latency(0, 1, 0, 64)
        assert remote > local
        assert stats.bytes_across_units == 64
        assert stats.bytes_inside_units >= 64  # local traffic counted too

    def test_load_estimator_decays(self):
        est = LoadEstimator(tau=100.0)
        est.inject(0, 1000)
        busy = est.rate()
        est.inject(10_000, 1)
        assert est.rate() < busy
