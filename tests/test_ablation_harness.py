"""Extension-experiment harness: row schemas and qualitative shapes.

Small parameterizations keep these fast; the full-size versions live in
``benchmarks/bench_extensions.py``.
"""

import pytest

from repro.harness import ablations
from repro.sim.config import ndp_2_5d
from repro.workloads.base import run_workload
from repro.workloads.rwbench import RWLockMicrobench


class TestRWLockMicrobench:
    def test_rejects_bad_read_pct(self):
        with pytest.raises(ValueError):
            RWLockMicrobench(read_pct=101)

    def test_counts_and_verifies(self):
        config = ndp_2_5d(num_units=2, cores_per_unit=4, client_cores_per_unit=3)
        metrics = run_workload(
            lambda: RWLockMicrobench(read_pct=80, rounds=5), config, "syncron"
        )
        assert metrics.operations == 5 * 6
        assert metrics.cycles > 0

    def test_all_read_mix_issues_no_writes(self):
        config = ndp_2_5d(num_units=1, cores_per_unit=4, client_cores_per_unit=3)
        workload = RWLockMicrobench(read_pct=100, rounds=4)
        system_metrics = None
        from repro.sim.system import NDPSystem

        system = NDPSystem(config, mechanism="syncron")
        workload.run(system)
        assert workload._state["updates"] == 0
        assert workload._state["lookups"] == 4 * 3
        del system_metrics

    def test_all_write_mix_issues_no_reads(self):
        config = ndp_2_5d(num_units=1, cores_per_unit=4, client_cores_per_unit=3)
        from repro.sim.system import NDPSystem

        workload = RWLockMicrobench(read_pct=0, rounds=4)
        workload.run(NDPSystem(config, mechanism="syncron"))
        assert workload._state["lookups"] == 0
        assert workload._state["updates"] == 4 * 3

    def test_mutex_mode_matches_operation_count(self):
        config = ndp_2_5d(num_units=1, cores_per_unit=4, client_cores_per_unit=3)
        metrics = run_workload(
            lambda: RWLockMicrobench(read_pct=50, rounds=4, mutex_mode=True),
            config, "syncron",
        )
        assert metrics.operations == 4 * 3


class TestAblationRows:
    def test_spin_baselines_schema_and_ordering(self):
        rows = ablations.spin_baselines(
            core_steps=(15,), mechanisms=("bakery", "rmw_spin", "syncron"),
            rounds=4,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["cores"] == 15 and row["units"] == 1
        assert row["bakery"] < row["rmw_spin"] < row["syncron"]

    def test_overflow_target_sweep_schema(self):
        rows = ablations.overflow_target_sweep(st_sizes=(4,))
        row = rows[0]
        assert row["st_entries"] == 4
        assert row["memory_overflow_pct"] > 0
        assert row["shared_cache"] > 0 and row["memory"] > 0

    def test_rwlock_read_ratio_monotone(self):
        rows = ablations.rwlock_read_ratio(
            read_pcts=(0, 100), mechanisms=("syncron",), rounds=5
        )
        assert rows[0]["syncron"] < rows[1]["syncron"]
        assert rows[1]["syncron"] > rows[1]["mutex"]

    def test_fairness_sweep_reduces_spread(self):
        rows = ablations.fairness_sweep(thresholds=(0, 2), rounds=8)
        unfair, fair = rows
        assert unfair["acquires"] == fair["acquires"]
        assert fair["unit_finish_spread"] < unfair["unit_finish_spread"]

    def test_se_knee_monotone_in_service_time(self):
        rows = ablations.se_vs_server_latency(se_cycles=(3, 96))
        assert rows[0]["syncron_ops_ms"] >= rows[1]["syncron_ops_ms"]
        # Hier is untouched by the SE knob.
        assert rows[0]["hier_ops_ms"] == rows[1]["hier_ops_ms"]
