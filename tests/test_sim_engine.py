"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Process, SimulationError, Simulator


class TestSimulator:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_single_event_fires_at_its_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for delay in (30, 10, 20):
            sim.schedule(delay, lambda d=delay: order.append(d))
        sim.run()
        assert order == [10, 20, 30]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(7, lambda t=tag: order.append(t))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_into_past_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_raises(self):
        sim = Simulator()
        sim.schedule(10, lambda: sim.schedule_at(3, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append(5))
        sim.schedule(50, lambda: fired.append(50))
        sim.run(until=10)
        assert fired == [5]
        assert sim.now == 10
        assert sim.pending_events == 1

    def test_event_at_exact_until_still_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.run(until=10)
        assert fired == [10]

    def test_max_events_guards_livelock(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1, reschedule)

        sim.schedule(0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_nested_scheduling_from_callbacks(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(3, inner)

        def inner():
            order.append(("inner", sim.now))

        sim.schedule(2, outer)
        sim.run()
        assert order == [("outer", 2), ("inner", 5)]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=50))
    def test_clock_is_monotonic_for_any_schedule(self, delays):
        sim = Simulator()
        seen = []
        for delay in delays:
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == max(delays)


class TestProcess:
    def test_resume_advances_and_returns_yielded(self):
        def gen():
            got = yield "first"
            yield ("second", got)

        proc = Process(gen())
        assert proc.resume() == "first"
        assert proc.resume(42) == ("second", 42)

    def test_finish_hook_fires_once(self):
        hits = []

        def gen():
            yield 1

        proc = Process(gen(), on_finish=lambda: hits.append(1))
        proc.resume()
        assert proc.resume() is None
        assert proc.resume() is None
        assert hits == [1]
        assert proc.finished

    def test_return_value_captured(self):
        def gen():
            yield 1
            return "done"

        proc = Process(gen())
        proc.resume()
        proc.resume()
        assert proc.result == "done"
