"""Concurrent data structures: functional invariants across mechanisms."""

import pytest

from repro.workloads.base import run_workload
from repro.workloads.datastructures import (
    ALL_STRUCTURES,
    ArrayMapWorkload,
    BSTDrachslerWorkload,
    BSTFineGrainedWorkload,
    HashTableWorkload,
    LinkedListWorkload,
    PriorityQueueWorkload,
    QueueWorkload,
    SkipListWorkload,
    StackWorkload,
)

from repro.testing import build_system


STRUCTURE_NAMES = sorted(ALL_STRUCTURES)


@pytest.mark.parametrize("name", STRUCTURE_NAMES)
def test_structure_verifies_on_syncron(tiny_config, name):
    """Every structure's own invariant checks pass under SynCron."""
    metrics = run_workload(ALL_STRUCTURES[name], tiny_config, "syncron")
    assert metrics.operations > 0
    assert metrics.cycles > 0
    assert metrics.sync_requests > 0


@pytest.mark.parametrize("name", STRUCTURE_NAMES)
@pytest.mark.parametrize("mechanism", ("central", "hier", "ideal"))
def test_structure_verifies_on_baselines(tiny_config, name, mechanism):
    metrics = run_workload(ALL_STRUCTURES[name], tiny_config, mechanism)
    assert metrics.operations > 0


class TestStack:
    def test_push_count_and_linkage(self, tiny_config):
        system = build_system(tiny_config)
        workload = StackWorkload(initial_size=10, ops_per_core=5)
        workload.run(system)
        assert len(workload.items) == 10 + 5 * len(system.cores)

    def test_throughput_metric(self, tiny_config):
        metrics = run_workload(
            lambda: StackWorkload(ops_per_core=4), tiny_config, "syncron"
        )
        assert metrics.ops_per_second > 0


class TestQueue:
    def test_pops_preserve_fifo_prefix(self, tiny_config):
        system = build_system(tiny_config)
        workload = QueueWorkload(ops_per_core=4)
        workload.run(system)
        # remaining items are exactly the un-popped suffix, in order.
        keys = [n.key for n in workload.items]
        assert keys == sorted(keys)
        assert keys[0] == workload.popped


class TestPriorityQueue:
    def test_delete_min_removes_global_minima(self, tiny_config):
        system = build_system(tiny_config)
        workload = PriorityQueueWorkload(ops_per_core=4)
        workload.run(system)
        n_deleted = 4 * len(system.cores)
        assert set(workload.deleted_keys) == set(range(n_deleted))


class TestSkipList:
    def test_every_core_deletes_its_keys(self, tiny_config):
        system = build_system(tiny_config)
        workload = SkipListWorkload(ops_per_core=4)
        workload.run(system)
        assert workload.deleted_count == 4 * len(system.cores)


class TestLinkedList:
    def test_lock_coupling_holds_two_locks(self, tiny_config):
        """Lock coupling must create simultaneous multi-lock demand (the
        property that matters for ST pressure)."""
        system = build_system(tiny_config)
        workload = LinkedListWorkload(initial_size=12, ops_per_core=3)
        workload.run(system)
        peaks = [se.st.peak_occupancy for se in system.mechanism.ses]
        assert max(peaks) >= 2


class TestBSTs:
    def test_bst_fg_tree_intact_after_lookups(self, tiny_config):
        system = build_system(tiny_config)
        workload = BSTFineGrainedWorkload(initial_size=32, ops_per_core=4)
        workload.run(system)
        assert workload.hits == 4 * len(system.cores)

    def test_bst_drachsler_deletions_land_exactly_once(self, tiny_config):
        system = build_system(tiny_config)
        workload = BSTDrachslerWorkload(ops_per_core=3)
        workload.run(system)
        assert workload.deleted_count == 3 * len(system.cores)

    def test_bst_drachsler_sync_is_sparse(self, tiny_config):
        """The paper's point: lock requests are a tiny share of traffic."""
        system = build_system(tiny_config)
        workload = BSTDrachslerWorkload(ops_per_core=3)
        metrics = workload.run(system)
        # two lock acquires + releases per op; far fewer sync requests than
        # the search-phase loads.
        assert metrics.sync_requests <= 5 * workload.operations()


class TestHashTableAndArrayMap:
    def test_hashtable_all_hits(self, tiny_config):
        metrics = run_workload(
            lambda: HashTableWorkload(initial_size=40, buckets=8, ops_per_core=5),
            tiny_config, "syncron",
        )
        assert metrics.operations == 5 * 6  # 6 clients in tiny_config

    def test_arraymap_critical_section_scans_all_entries(self, tiny_config):
        system = build_system(tiny_config)
        workload = ArrayMapWorkload(ops_per_core=3)
        workload.run(system)
        assert workload.hits == 3 * len(system.cores)


class TestContentionClasses:
    def test_coarse_lock_structures_have_single_hot_variable(self, tiny_config):
        system = build_system(tiny_config)
        StackWorkload(ops_per_core=5).run(system)
        # a coarse-grained stack keeps at most a couple of ST entries alive.
        assert max(se.st.peak_occupancy for se in system.mechanism.ses) <= 2

    def test_hashtable_spreads_entries(self, tiny_config):
        system = build_system(tiny_config)
        HashTableWorkload(initial_size=64, buckets=16, ops_per_core=6).run(system)
        total_allocs = sum(se.st.allocations for se in system.mechanism.ses)
        assert total_allocs > 6  # many distinct variables buffered over time
