"""RMW extension, energy accounting, stats, and harness smoke tests."""

import pytest

from repro.core import api
from repro.core.rmw import RMW_OPS, RmwExtension
from repro.sim.config import ndp_2_5d
from repro.sim.energy import compute_energy
from repro.sim.program import Compute, Load
from repro.sim.stats import SystemStats

from repro.testing import build_system


class TestRmwExtension:
    def test_fetch_add_serializes_at_master(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        rmw = RmwExtension(system.mechanism)
        addr = system.addrmap.alloc(0, 8)
        olds = []

        def issue(core, count):
            def do(remaining):
                if remaining == 0:
                    return
                rmw.rmw(core, addr, "fetch_add", 1,
                        lambda old: (olds.append(old), do(remaining - 1)))

            do(count)

        for core in system.cores:
            issue(core, 3)
        system.sim.run()
        assert rmw.value(addr) == 3 * len(system.cores)
        # atomicity: every intermediate value observed exactly once.
        assert sorted(olds) == list(range(3 * len(system.cores)))

    def test_all_ops_have_correct_semantics(self):
        assert RMW_OPS["fetch_add"](5, 3) == 8
        assert RMW_OPS["fetch_and"](0b1100, 0b1010) == 0b1000
        assert RMW_OPS["fetch_or"](0b1100, 0b0011) == 0b1111
        assert RMW_OPS["fetch_xor"](0b1100, 0b1010) == 0b0110
        assert RMW_OPS["swap"](7, 9) == 9
        assert RMW_OPS["fetch_max"](4, 9) == 9
        assert RMW_OPS["fetch_min"](4, 9) == 4

    def test_unknown_op_rejected(self, tiny_config):
        system = build_system(tiny_config)
        rmw = RmwExtension(system.mechanism)
        with pytest.raises(ValueError):
            rmw.rmw(system.cores[0], 0, "fetch_mul", 2, lambda old: None)

    def test_remote_rmw_counts_global_messages(self, tiny_config):
        system = build_system(tiny_config)
        rmw = RmwExtension(system.mechanism)
        addr = system.addrmap.alloc(1, 8)  # master in unit 1
        rmw.rmw(system.cores[0], addr, "fetch_add", 1, lambda old: None)
        system.sim.run()
        assert system.stats.sync_messages_global == 2  # request + response


class TestEnergyModel:
    def test_components_track_their_events(self):
        config = ndp_2_5d()
        stats = SystemStats()
        zero = compute_energy(stats, config)
        assert zero.total_pj == 0

        stats.cache_hits = 10
        stats.local_bit_hops = 100
        stats.dram_reads = 2
        breakdown = compute_energy(stats, config)
        assert breakdown.cache_pj == 10 * config.energy.cache_hit_pj
        assert breakdown.network_pj == pytest.approx(
            100 * config.energy.local_network_pj_per_bit_hop
        )
        assert breakdown.memory_pj == pytest.approx(
            2 * 64 * 8 * config.memory.energy_pj_per_bit
        )

    def test_link_traffic_dominates_network_energy(self):
        config = ndp_2_5d()
        stats = SystemStats()
        stats.link_bit_hops = 1000 * 8  # 1000 bytes over one physical link
        cross = compute_energy(stats, config).network_pj
        stats2 = SystemStats()
        stats2.local_bit_hops = 1000 * 8 * 2
        local = compute_energy(stats2, config).network_pj
        assert cross > local  # 4 pJ/bit/link vs 0.4 pJ/bit/hop NoC

    def test_link_energy_scales_with_hops_traversed(self):
        # the same payload over a 3-hop route costs 3x the link energy.
        config = ndp_2_5d()
        one_hop, three_hops = SystemStats(), SystemStats()
        one_hop.bytes_across_units = three_hops.bytes_across_units = 1000
        one_hop.link_bit_hops = 1000 * 8
        three_hops.link_bit_hops = 1000 * 8 * 3
        assert compute_energy(three_hops, config).network_pj == pytest.approx(
            3 * compute_energy(one_hop, config).network_pj
        )

    def test_normalization(self):
        config = ndp_2_5d()
        stats = SystemStats()
        stats.cache_hits = 10
        base = compute_energy(stats, config)
        norm = base.normalized(base)
        assert norm["total"] == pytest.approx(1.0)

    def test_syncron_saves_energy_vs_central(self, quad_config):
        from repro.workloads.base import run_workload
        from repro.workloads.datastructures import StackWorkload

        energies = {}
        for mech in ("central", "syncron"):
            metrics = run_workload(
                lambda: StackWorkload(ops_per_core=6), quad_config, mech
            )
            energies[mech] = metrics.energy.total_pj
        assert energies["syncron"] < energies["central"]


class TestStats:
    def test_occupancy_summary(self):
        stats = SystemStats()
        stats.record_st_occupancy(0, 10)
        stats.record_st_occupancy(0, 20)
        stats.record_st_occupancy(1, 40)
        summary = stats.st_occupancy_summary(64)
        assert summary["max_pct"] == pytest.approx(100 * 40 / 64)
        assert stats.st_occupancy_avg(0) == pytest.approx(15.0)

    def test_overflow_pct(self):
        stats = SystemStats()
        assert stats.overflow_request_pct == 0.0
        stats.sync_requests_total = 10
        stats.st_overflow_requests = 3
        assert stats.overflow_request_pct == pytest.approx(30.0)

    def test_as_dict_roundtrip(self):
        stats = SystemStats()
        stats.cache_hits = 5
        snapshot = stats.as_dict()
        assert snapshot["cache_hits"] == 5


class TestHarnessSmoke:
    """Every experiment function runs end-to-end with minimal parameters."""

    def test_fig10(self):
        from repro.harness.experiments import fig10

        rows = fig10("lock", intervals=(200,), rounds=4,
                     mechanisms=("central", "syncron"))
        assert rows[0]["syncron"] > 0

    def test_fig11(self):
        from repro.harness.experiments import fig11

        rows = fig11("stack", core_steps=(15,), mechanisms=("central", "syncron"))
        assert rows[0]["syncron"] > 0

    def test_fig12_and_headline(self):
        from repro.harness.experiments import fig12, headline_summary

        rows = fig12(combos=("tc.wk",),
                     mechanisms=("central", "hier", "syncron", "ideal"))
        summary = headline_summary(rows)
        assert summary["syncron_vs_central"] >= 1.0

    def test_fig22(self):
        from repro.harness.experiments import fig22

        rows = fig22(combos=("tc.wk",), st_sizes=(64, 4))
        assert rows[0]["ST_64"] == pytest.approx(1.0)

    def test_table7(self):
        from repro.harness.experiments import table7

        rows = table7(combos=("tc.wk",))
        assert 0 <= rows[0]["avg_pct"] <= rows[0]["max_pct"] <= 100

    def test_reporting(self):
        from repro.harness.reporting import format_table, geomean, summarize_speedups

        rows = [{"app": "x", "a": 1.0, "b": 2.0}, {"app": "y", "a": 1.0, "b": 4.0}]
        text = format_table(rows, title="T")
        assert "app" in text and "2.000" in text
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        summary = summarize_speedups(rows, "b", "a")
        assert summary["max"] == pytest.approx(4.0)
        assert summary["avg"] == pytest.approx(geomean([2.0, 4.0]))

    def test_format_table_empty(self):
        from repro.harness.reporting import format_table

        assert "(no rows)" in format_table([], title="x")
