"""Time-series (SCRIMP) workload and the Fig. 10 microbenchmarks."""

import math

import pytest

from repro.workloads.base import run_workload
from repro.workloads.microbench import PRIMITIVES, PrimitiveMicrobench
from repro.workloads.timeseries import (
    DATASETS,
    TimeSeriesWorkload,
    generate_series,
    matrix_profile_reference,
)

from repro.testing import build_system


class TestSeriesGeneration:
    def test_deterministic(self):
        assert generate_series("air", 64) == generate_series("air", 64)

    def test_datasets_differ(self):
        assert generate_series("air", 64) != generate_series("pow", 64)

    def test_planted_motif_has_close_match(self):
        series = generate_series("air", 120)
        profile = matrix_profile_reference(series, window=8)
        # the planted motif repeats, so some profile entry is near zero.
        assert min(profile) < 0.2


class TestBruteForceProfile:
    def test_exclusion_zone_respected(self):
        series = [float(i % 5) for i in range(40)]
        profile = matrix_profile_reference(series, window=8)
        # trivial self-matches excluded -> no exact zeros from |i-j| < window
        assert len(profile) == 40 - 8 + 1

    def test_profile_symmetric_in_pairs(self):
        series = generate_series("pow", 60)
        profile = matrix_profile_reference(series, window=8)
        assert all(p >= 0 for p in profile)


class TestTimeSeriesWorkload:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_matches_brute_force(self, tiny_config, dataset):
        workload = TimeSeriesWorkload(dataset, length=48)
        metrics = run_workload(lambda: workload, tiny_config, "syncron")
        assert metrics.operations == workload._steps
        # verify() already compared to brute force; spot-check one entry.
        reference = matrix_profile_reference(workload.series, workload.window)
        assert math.isclose(workload.profile[0], reference[0], rel_tol=1e-9)

    @pytest.mark.parametrize("mechanism", ("central", "hier", "ideal"))
    def test_all_mechanisms_agree_functionally(self, tiny_config, mechanism):
        workload = TimeSeriesWorkload("air", length=40)
        run_workload(lambda: workload, tiny_config, mechanism)

    def test_high_sync_intensity(self, tiny_config):
        """ts must exercise many lock operations (its defining property)."""
        workload = TimeSeriesWorkload("air", length=48)
        metrics = run_workload(lambda: workload, tiny_config, "syncron")
        assert metrics.sync_requests > 50

    def test_bad_dataset_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesWorkload("nope")


class TestMicrobench:
    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_each_primitive_completes(self, tiny_config, primitive):
        metrics = run_workload(
            lambda: PrimitiveMicrobench(primitive, interval=100, rounds=4),
            tiny_config, "syncron",
        )
        assert metrics.operations > 0

    def test_interval_dilutes_sync_cost(self, tiny_config):
        """As the interval grows, cycles grow but sync share shrinks —
        mechanisms converge (the Fig. 10 trend)."""
        gaps = {}
        for interval in (20, 2000):
            cyc = {}
            for mech in ("central", "syncron"):
                metrics = run_workload(
                    lambda: PrimitiveMicrobench("lock", interval, rounds=5),
                    tiny_config, mech,
                )
                cyc[mech] = metrics.cycles
            gaps[interval] = cyc["central"] / cyc["syncron"]
        assert gaps[20] > gaps[2000]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            PrimitiveMicrobench("mutex", 100)
        with pytest.raises(ValueError):
            PrimitiveMicrobench("lock", -5)
        with pytest.raises(ValueError):
            PrimitiveMicrobench("lock", 100, rounds=0)

    def test_verify_counts_rounds(self, tiny_config):
        system = build_system(tiny_config)
        bench = PrimitiveMicrobench("barrier", interval=10, rounds=3)
        bench.run(system)  # raises if any round was lost
