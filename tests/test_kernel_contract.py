"""Regression tests pinning the event-kernel contract.

The kernel was rewritten for throughput (args-based callbacks, batch drain,
``__slots__``); these tests pin the semantics the rest of the simulator
relies on so a future optimization cannot silently reorder events:

- same-timestamp events fire in insertion order, including events inserted
  *during* a same-timestamp batch;
- ``until`` / ``max_events`` semantics;
- ``Process.resume`` after finish;
- scheduling-validation behaviour;
- both ``tests/`` and ``benchmarks/`` collect cleanly from the repo root
  (the seed shipped with a conftest-shadowing bug that broke all 16 test
  modules importing shared helpers).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.engine import Process, SimulationError, Simulator

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDeterminismContract:
    def test_same_timestamp_insertion_order_with_args(self):
        sim = Simulator()
        order = []
        for tag in range(8):
            sim.schedule(4, order.append, tag)
        sim.run()
        assert order == list(range(8))

    def test_mixed_schedule_and_schedule_at_same_timestamp(self):
        sim = Simulator()
        order = []
        sim.schedule(10, order.append, "a")
        sim.schedule_at(10, order.append, "b")
        sim.schedule(10, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_events_inserted_during_batch_keep_insertion_order(self):
        """An event scheduled at delay 0 from inside a same-cycle batch must
        run after the events already queued at that timestamp."""
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0, order.append, "child-of-first")

        sim.schedule(5, first)
        sim.schedule(5, order.append, "second")
        sim.run()
        assert order == ["first", "second", "child-of-first"]

    def test_interleaved_timestamps_stay_sorted(self):
        sim = Simulator()
        seen = []
        for delay in (9, 3, 7, 3, 9, 0, 7):
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == 9

    def test_run_is_identical_to_stepping(self):
        def build():
            sim = Simulator()
            log = []

            def tick(tag):
                log.append((sim.now, tag))
                if tag < 30:
                    sim.schedule((tag * 7) % 5, tick, tag + 1)

            for tag in range(3):
                sim.schedule(tag % 2, tick, tag * 100)
            return sim, log

        sim_run, log_run = build()
        sim_run.run()
        sim_step, log_step = build()
        while sim_step.step():
            pass
        assert log_run == log_step
        assert sim_run.now == sim_step.now


class TestRunBounds:
    def test_until_stops_clock_and_keeps_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, fired.append, 5)
        sim.schedule(50, fired.append, 50)
        sim.run(until=10)
        assert fired == [5]
        assert sim.now == 10
        assert sim.pending_events == 1
        sim.run()
        assert fired == [5, 50]

    def test_event_at_exact_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, 10)
        sim.run(until=10)
        assert fired == [10]

    def test_until_with_drained_queue_advances_clock_to_until(self):
        # The clock reaches ``until`` whether the queue empties before it
        # (this case) or its head is past it — previously only the latter
        # advanced, leaving run(until=t) semantics dependent on queue state.
        sim = Simulator()
        sim.schedule(4, lambda: None)
        sim.run(until=100)
        assert sim.now == 100

    def test_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=37)
        assert sim.now == 37

    def test_until_in_the_past_does_not_rewind_clock(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        assert sim.now == 10
        sim.run(until=5)
        assert sim.now == 10

    def test_max_events_raises_on_livelock(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1, reschedule)

        sim.schedule(0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)
        assert sim.events_processed == 100

    def test_max_events_combined_with_until(self):
        sim = Simulator()
        fired = []
        for d in range(20):
            sim.schedule(d, fired.append, d)
        sim.run(until=9, max_events=50)
        assert fired == list(range(10))
        assert sim.now == 9


class TestValidation:
    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_past_raises_mid_run(self):
        sim = Simulator()
        sim.schedule(10, lambda: sim.schedule_at(3, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_validation_can_be_disabled(self):
        sim = Simulator(validate=False)
        sim.schedule(-5, lambda: None)  # accepted: caller opted out
        sim.run()

    def test_validation_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_VALIDATE", "0")
        sim = Simulator()
        sim.schedule(-5, lambda: None)
        monkeypatch.setenv("REPRO_SIM_VALIDATE", "1")
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)


class TestProcessResume:
    def test_resume_after_finish_returns_none_and_fires_hook_once(self):
        hits = []

        def gen():
            yield 1

        proc = Process(gen(), on_finish=lambda: hits.append(1))
        assert proc.resume() == 1
        assert proc.resume() is None
        assert proc.resume() is None
        assert proc.resume() is None
        assert hits == [1]
        assert proc.finished
        assert proc.result is None

    def test_resume_carries_sent_values_and_return(self):
        def gen():
            got = yield "op"
            assert got == 42
            return "retval"

        proc = Process(gen())
        assert proc.resume() == "op"
        assert proc.resume(42) is None
        assert proc.result == "retval"


class TestCollectionSmoke:
    """Both suites must collect with zero errors from the repo root — this is
    the regression test for the conftest-shadowing bug that broke the seed."""

    @pytest.mark.parametrize("target", ["tests", "benchmarks"])
    def test_collects_cleanly(self, target):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "pytest", target, "--collect-only", "-q"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300,
        )
        tail = result.stdout[-2000:] + result.stderr[-2000:]
        # pytest exits non-zero (2) on any collection error.
        assert result.returncode == 0, tail
        assert "tests collected" in result.stdout, tail
        assert "errors" not in result.stdout.splitlines()[-1], tail
