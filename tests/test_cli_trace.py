"""CLI (`python -m repro`) and the message tracer."""

import pytest

from repro.cli import EXPERIMENTS, _parse_value, build_parser, main
from repro.core import api
from repro.sim.program import Compute
from repro.sim.trace import MessageTracer

from repro.testing import build_system


class TestCliParsing:
    def test_parse_scalars(self):
        assert _parse_value("15") == 15
        assert _parse_value("2.5") == 2.5
        assert _parse_value("stack") == "stack"

    def test_parse_tuples(self):
        assert _parse_value("15,30") == (15, 30)
        assert _parse_value("ts.air,ts.pow") == ("ts.air", "ts.pow")
        assert _parse_value("15,") == (15,)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_experiment_has_a_description(self):
        for name, (fn, description) in EXPERIMENTS.items():
            assert callable(fn)
            assert description


class TestCliCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig22" in out and "table1" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_missing_required_arg(self, capsys):
        assert main(["run", "fig11"]) == 2

    def test_run_bad_arg_syntax(self, capsys):
        assert main(["run", "fig22", "--arg", "nonsense"]) == 2

    def test_run_fig11_scalar_sequence_coercion(self, capsys):
        code = main(["run", "fig11", "--arg", "structure=hashtable",
                     "--arg", "core_steps=15",
                     "--arg", "mechanisms=syncron,ideal"])
        assert code == 0
        out = capsys.readouterr().out
        assert "syncron" in out and "15" in out

    def test_run_fig2_dict_result(self, capsys):
        code = main(["run", "fig2", "--arg", "ops_per_core=3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a_cores" in out and "b_units" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        assert "0 lost updates" in capsys.readouterr().out

    def test_extension_experiments_listed(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("ext_spin", "ext_overflow", "ext_rwlock",
                     "ext_fairness", "ext_se_knee"):
            assert name in out

    def test_run_ext_fairness_with_plot(self, capsys):
        code = main(["run", "ext_fairness", "--arg", "thresholds=0,2",
                     "--arg", "rounds=6", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "unit_finish_spread" in out
        assert "o=makespan" in out  # the line chart's legend

    def test_plot_flag_without_mapping_warns(self, capsys):
        code = main(["run", "table7", "--arg", "combos=ts.air", "--plot"])
        assert code == 0
        assert "no plot mapping" in capsys.readouterr().err


class TestRenderPlot:
    def test_line_mapping(self):
        from repro.cli import render_plot

        rows = [
            {"cores": 15, "bakery": 1.0, "rmw_spin": 2.0,
             "syncron": 3.0, "ideal": 4.0},
            {"cores": 30, "bakery": 0.5, "rmw_spin": 1.5,
             "syncron": 3.5, "ideal": 5.0},
        ]
        chart = render_plot("ext_spin", rows)
        assert chart is not None
        assert "o=bakery" in chart

    def test_unknown_experiment_returns_none(self):
        from repro.cli import render_plot

        assert render_plot("table1", [{"a": 1}]) is None

    def test_missing_series_returns_none(self):
        from repro.cli import render_plot

        assert render_plot("ext_spin", [{"cores": 15}]) is None

    def test_bar_mapping(self):
        from repro.cli import render_plot

        rows = [{"app": "bfs.wk", "hier": 1.1, "syncron": 1.4, "ideal": 1.6}]
        chart = render_plot("fig12", rows)
        assert "syncron" in chart and "#" in chart


class TestMessageTracer:
    def run_traced(self, mechanism="syncron"):
        from repro.testing import ALL_MECHANISMS  # noqa: F401

        from repro.sim.config import ndp_2_5d
        from repro.sim.system import NDPSystem

        system = NDPSystem(
            ndp_2_5d(num_units=2, cores_per_unit=3, client_cores_per_unit=2),
            mechanism=mechanism,
        )
        tracer = MessageTracer(system)
        lock = system.create_syncvar(unit=1, name="traced_lock")

        def worker():
            for _ in range(2):
                yield api.lock_acquire(lock)
                yield Compute(10)
                yield api.lock_release(lock)

        system.run_programs({c.core_id: worker() for c in system.cores})
        return system, tracer, lock

    def test_records_all_protocol_messages(self):
        system, tracer, lock = self.run_traced()
        assert len(tracer) > 0
        summary = tracer.summary()
        assert summary["LOCK_ACQUIRE_LOCAL"] == 8  # 4 cores x 2 ops
        assert summary["LOCK_RELEASE_LOCAL"] == 8
        assert summary.get("LOCK_ACQUIRE_GLOBAL", 0) >= 1  # unit 0 -> master

    def test_timestamps_monotonic_per_engine(self):
        _, tracer, _ = self.run_traced()
        per_engine = {}
        for record in tracer.records:
            per_engine.setdefault(record.engine, []).append(record.time)
        for times in per_engine.values():
            assert times == sorted(times)

    def test_variable_and_core_filters(self):
        system, tracer, lock = self.run_traced()
        for record in tracer.for_variable(lock):
            assert record.variable == "traced_lock"
        core0 = tracer.for_core(0)
        assert all(r.core == 0 for r in core0)
        assert core0  # core 0 definitely sent messages

    def test_between_and_format(self):
        _, tracer, _ = self.run_traced()
        window = tracer.between(0, tracer.records[-1].time)
        assert len(window) == len(tracer)
        text = tracer.format(limit=5)
        assert "LOCK_" in text
        if len(tracer) > 5:
            assert "more)" in text

    def test_tracing_does_not_change_timing(self):
        from repro.sim.config import ndp_2_5d
        from repro.sim.system import NDPSystem

        def run(traced):
            system = NDPSystem(
                ndp_2_5d(num_units=2, cores_per_unit=3,
                         client_cores_per_unit=2),
                mechanism="syncron",
            )
            if traced:
                MessageTracer(system)
            lock = system.create_syncvar(unit=0)

            def worker():
                for _ in range(3):
                    yield api.lock_acquire(lock)
                    yield api.lock_release(lock)

            return system.run_programs(
                {c.core_id: worker() for c in system.cores}
            )

        assert run(False) == run(True)

    def test_works_on_central(self):
        _, tracer, _ = self.run_traced("central")
        assert tracer.summary()["LOCK_ACQUIRE_LOCAL"] == 8
