"""Semaphore and condition-variable semantics across mechanisms."""

import pytest

from repro.core import api
from repro.sim.program import Compute

from repro.testing import ALL_MECHANISMS, build_system

MECHS = tuple(m for m in ALL_MECHANISMS)


@pytest.mark.parametrize("mechanism", MECHS)
class TestSemaphore:
    def test_bounded_resource_pool(self, tiny_config, mechanism):
        """A semaphore with K resources never admits more than K holders."""
        system = build_system(tiny_config, mechanism)
        sem = system.create_syncvar(name="S")
        K = 2
        state = {"inside": 0, "max_inside": 0, "completed": 0}

        def worker():
            for _ in range(4):
                yield api.sem_wait(sem, K)
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"], state["inside"])
                yield Compute(30)
                state["inside"] -= 1
                state["completed"] += 1
                yield api.sem_post(sem)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert state["max_inside"] <= K
        assert state["completed"] == 4 * len(system.cores)

    def test_producer_consumer(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        sem = system.create_syncvar(name="S")
        items = {"produced": 0, "consumed": 0}
        rounds = 5

        def producer():
            for _ in range(rounds):
                yield Compute(20)
                items["produced"] += 1
                yield api.sem_post(sem)

        def consumer():
            for _ in range(rounds):
                yield api.sem_wait(sem, 0)
                items["consumed"] += 1
                assert items["consumed"] <= items["produced"]

        programs = {}
        cores = system.cores
        half = len(cores) // 2
        for i, core in enumerate(cores[: 2 * half]):
            programs[core.core_id] = consumer() if i < half else producer()
        system.run_programs(programs)
        assert items["consumed"] == rounds * half

    def test_initial_resources_admit_without_post(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        sem = system.create_syncvar()

        def worker():
            yield api.sem_wait(sem, len(system.cores))

        cycles = system.run_programs(
            {c.core_id: worker() for c in system.cores}
        )
        assert cycles >= 0  # run_programs returning means no deadlock


@pytest.mark.parametrize("mechanism", MECHS)
class TestConditionVariable:
    def test_signal_wakes_one_waiter_with_lock_held(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        lock = system.create_syncvar(name="CL")
        cond = system.create_syncvar(name="CV")
        state = {"waiting": 0, "woken": 0, "lock_holder": None}
        cores = system.cores
        half = len(cores) // 2

        def waiter(core):
            yield api.lock_acquire(lock)
            state["waiting"] += 1
            yield api.cond_wait(cond, lock)
            # pthread contract: the lock is re-held on wakeup.
            assert state["lock_holder"] is None
            state["lock_holder"] = core.core_id
            state["woken"] += 1
            state["lock_holder"] = None
            yield api.lock_release(lock)

        def signaler():
            sent = 0
            while sent < half:
                yield Compute(100)
                yield api.lock_acquire(lock)
                if state["waiting"] > state["woken"] + sent - 0:
                    pass
                if state["waiting"] > 0:
                    state["waiting"] -= 1
                    yield api.cond_signal(cond)
                    sent += 1
                yield api.lock_release(lock)

        programs = {}
        for i, core in enumerate(cores[: half]):
            programs[core.core_id] = waiter(core)
        programs[cores[half].core_id] = signaler()
        system.run_programs(programs)
        assert state["woken"] == half

    def test_broadcast_wakes_everyone(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        lock = system.create_syncvar()
        cond = system.create_syncvar()
        state = {"waiting": 0, "woken": 0}
        cores = system.cores
        waiters = cores[:-1]

        def waiter():
            yield api.lock_acquire(lock)
            state["waiting"] += 1
            yield api.cond_wait(cond, lock)
            state["woken"] += 1
            yield api.lock_release(lock)

        def broadcaster():
            while True:
                yield Compute(200)
                yield api.lock_acquire(lock)
                ready = state["waiting"] == len(waiters)
                if ready:
                    yield api.cond_broadcast(cond)
                    yield api.lock_release(lock)
                    return
                yield api.lock_release(lock)

        programs = {c.core_id: waiter() for c in waiters}
        programs[cores[-1].core_id] = broadcaster()
        system.run_programs(programs)
        assert state["woken"] == len(waiters)

    def test_signal_without_waiters_is_lost(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        cond = system.create_syncvar()

        def signaler():
            yield api.cond_signal(cond)
            yield Compute(10)

        cycles = system.run_programs({0: signaler()})
        assert cycles > 0  # completes; nothing hangs


class TestVariableKinds:
    def test_variable_cannot_change_primitive(self, tiny_system):
        # Enforced by the shared admission check (every mechanism, not just
        # SynCron's engine); ProtocolError subclasses SyncUsageError.
        from repro.sim.syncif import SyncUsageError

        var = tiny_system.create_syncvar()

        def program():
            yield api.lock_acquire(var)
            yield api.lock_release(var)
            yield api.sem_wait(var, 1)

        with pytest.raises(SyncUsageError):
            tiny_system.run_programs({0: program()})
