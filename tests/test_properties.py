"""Property-based tests (hypothesis): the distributed SynCron protocol is
checked against the timing-free reference semantics under randomized
programs, configurations, and interleavings."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import api
from repro.sim.config import ndp_2_5d
from repro.sim.program import Compute
from repro.sim.system import NDPSystem

SETTINGS = dict(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_system(num_units=2, clients=3, st_entries=64, mechanism="syncron"):
    config = ndp_2_5d(
        num_units=num_units,
        cores_per_unit=clients + 1,
        client_cores_per_unit=clients,
        st_entries=st_entries,
    )
    return NDPSystem(config, mechanism=mechanism)


# a per-core schedule: list of (lock_index, cs_length, think_time)
core_schedule = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=60),
    ),
    min_size=0,
    max_size=8,
)


@settings(**SETTINGS)
@given(schedules=st.lists(core_schedule, min_size=1, max_size=6),
       st_entries=st.sampled_from([2, 4, 64]),
       mechanism=st.sampled_from(["syncron", "syncron_flat", "hier"]))
def test_random_lock_programs_preserve_mutual_exclusion(
    schedules, st_entries, mechanism
):
    system = make_system(st_entries=st_entries, mechanism=mechanism)
    locks = [system.create_syncvar() for _ in range(6)]
    holders = {lock.addr: None for lock in locks}
    completed = [0]

    def worker(core_id, schedule):
        for lock_idx, cs_len, think in schedule:
            lock = locks[lock_idx]
            yield Compute(think)
            yield api.lock_acquire(lock)
            assert holders[lock.addr] is None, "mutual exclusion violated"
            holders[lock.addr] = core_id
            yield Compute(cs_len)
            holders[lock.addr] = None
            yield api.lock_release(lock)
            completed[0] += 1

    programs = {
        system.cores[i].core_id: worker(i, schedule)
        for i, schedule in enumerate(schedules[: len(system.cores)])
    }
    system.run_programs(programs)
    assert completed[0] == sum(
        len(s) for s in schedules[: len(system.cores)]
    )


@settings(**SETTINGS)
@given(pair_schedules=st.lists(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=0, max_size=5,
    ),
    min_size=1, max_size=6,
), st_entries=st.sampled_from([2, 64]))
def test_two_lock_programs_never_deadlock_or_corrupt(pair_schedules, st_entries):
    """Cores take lock pairs in ascending index order (deadlock-free by
    construction); the protocol must neither deadlock nor double-grant even
    when the ST constantly overflows."""
    system = make_system(st_entries=st_entries)
    locks = [system.create_syncvar() for _ in range(6)]
    held = set()

    def worker(schedule):
        for a, b in schedule:
            first, second = sorted((a, min(b + 1, 5))) if a != b else (a, None)
            yield api.lock_acquire(locks[first])
            assert locks[first].addr not in held
            held.add(locks[first].addr)
            if second is not None and second != first:
                yield api.lock_acquire(locks[second])
                assert locks[second].addr not in held
                held.add(locks[second].addr)
            yield Compute(10)
            if second is not None and second != first:
                held.discard(locks[second].addr)
                yield api.lock_release(locks[second])
            held.discard(locks[first].addr)
            yield api.lock_release(locks[first])

    programs = {
        system.cores[i].core_id: worker(schedule)
        for i, schedule in enumerate(pair_schedules[: len(system.cores)])
    }
    system.run_programs(programs)
    # quiescence: all hardware state drained.
    for se in system.mechanism.ses:
        assert se.st.occupied == 0
        assert se.counters.total_active == 0


@settings(**SETTINGS)
@given(counts=st.lists(st.integers(min_value=1, max_value=5), min_size=2,
                       max_size=6),
       initial=st.integers(min_value=1, max_value=3))
def test_semaphore_never_overadmits(counts, initial):
    # initial >= 1: with zero resources and wait-before-post workers, the
    # program itself (not the mechanism) would deadlock.
    system = make_system()
    sem = system.create_syncvar()
    state = {"inside": 0, "max": 0}
    total_posts = sum(counts)

    def waiter(n):
        for _ in range(n):
            yield api.sem_wait(sem, initial)
            state["inside"] += 1
            state["max"] = max(state["max"], state["inside"])
            yield Compute(15)
            state["inside"] -= 1
            yield api.sem_post(sem)

    programs = {
        system.cores[i].core_id: waiter(n)
        for i, n in enumerate(counts[: len(system.cores)])
    }
    system.run_programs(programs)
    assert state["max"] <= initial + len(programs)
    assert state["inside"] == 0


@settings(**SETTINGS)
@given(phases=st.integers(min_value=1, max_value=5),
       participants=st.integers(min_value=2, max_value=6),
       st_entries=st.sampled_from([1, 64]))
def test_barrier_phase_atomicity(phases, participants, st_entries):
    system = make_system(st_entries=st_entries)
    participants = min(participants, len(system.cores))
    bar = system.create_syncvar()
    arrived = [0] * phases

    def worker(core_id):
        for p in range(phases):
            yield Compute((core_id * 7 + p * 3) % 25)
            arrived[p] += 1
            yield api.barrier_wait_across_units(bar, participants)
            assert arrived[p] == participants

    programs = {
        system.cores[i].core_id: worker(i) for i in range(participants)
    }
    system.run_programs(programs)
    assert arrived == [participants] * phases


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_determinism_same_seed_same_makespan(seed):
    """Two identical runs produce identical cycle counts."""
    import random

    def one_run():
        system = make_system()
        locks = [system.create_syncvar() for _ in range(4)]

        def worker(core_id):
            rng = random.Random(seed ^ core_id)
            for _ in range(5):
                lock = locks[rng.randrange(4)]
                yield api.lock_acquire(lock)
                yield Compute(rng.randrange(30))
                yield api.lock_release(lock)

        system.run_programs(
            {c.core_id: worker(c.core_id) for c in system.cores}
        )
        return system.sim.now

    assert one_run() == one_run()


@settings(**SETTINGS)
@given(n=st.integers(min_value=10, max_value=80),
       m=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=1000))
def test_generated_graphs_are_well_formed(n, m, seed):
    from repro.workloads.graphs import barabasi_albert

    if n <= m:
        n = m + 2
    graph = barabasi_albert(n, m, seed)
    graph.validate()  # symmetry, no self-loops, no duplicates
    assert all(graph.degree(v) >= m for v in range(n))


@settings(**SETTINGS)
@given(n=st.integers(min_value=20, max_value=100),
       parts=st.integers(min_value=2, max_value=5),
       seed=st.integers(min_value=0, max_value=50))
def test_partitions_cover_all_vertices(n, parts, seed):
    from repro.workloads.graphs import (
        barabasi_albert, bfs_partition, part_sizes, random_partition,
    )

    graph = barabasi_albert(n, 2, seed)
    for assignment in (
        random_partition(graph, parts, seed),
        bfs_partition(graph, parts),
    ):
        assert len(assignment) == n
        assert all(0 <= p < parts for p in assignment)
        assert sum(part_sizes(assignment, parts)) == n
