"""Property-based cross-mechanism equivalence.

Hypothesis generates structured random programs (lock-protected critical
sections, rw-lock sections, rmw updates, compute gaps) and every mechanism
must produce the *same functional outcome* — same final counters, no
exclusion violations — even though their timing differs by orders of
magnitude.  A protocol bug that double-grants, drops a grant, or loses an
update cannot hide: some generated schedule will expose it as a divergence.

Also checks the overflow path specifically: SynCron with a 1-entry ST must
behave identically (functionally) to SynCron with a roomy ST.
"""

from hypothesis import given, settings, strategies as st

from repro.core import api
from repro.sim.config import ndp_2_5d
from repro.sim.program import Compute, RmwOp
from repro.sim.system import NDPSystem

#: mechanisms compared for functional equivalence (bakery excluded only
#: for speed; its semantics are covered in test_spin_baselines.py).
MECHANISMS = ("syncron", "syncron_flat", "central", "hier", "ideal", "rmw_spin")

CONFIG = ndp_2_5d(num_units=2, cores_per_unit=4, client_cores_per_unit=3)


#: one program step: (kind, variable index, section length, gap length).
step_strategy = st.tuples(
    st.sampled_from(("lock", "rw_read", "rw_write", "rmw")),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=60),
)

#: per-core sequences of steps; cores may have different lengths.
program_strategy = st.lists(
    st.lists(step_strategy, min_size=1, max_size=5),
    min_size=1, max_size=6,
)


def run_spec(mechanism: str, spec, st_entries: int = 64):
    """Execute one generated spec; returns the functional outcome."""
    config = CONFIG.with_(st_entries=st_entries)
    system = NDPSystem(config, mechanism=mechanism)
    locks = [system.create_syncvar(name=f"l{i}") for i in range(3)]
    rwlocks = [system.create_syncvar(name=f"rw{i}") for i in range(3)]
    rmw_addrs = [system.addrmap.alloc(unit=i % 2, nbytes=8) for i in range(3)]

    counters = [0] * 3
    rw_counts = [0] * 3
    rmw_sums = [0] * 3
    guards = {"lock": [0] * 3, "writer": [0] * 3, "readers": [0] * 3,
              "violations": 0}

    def worker(steps):
        for kind, var, section, gap in steps:
            if gap:
                yield Compute(gap)
            if kind == "lock":
                yield api.lock_acquire(locks[var])
                guards["lock"][var] += 1
                if guards["lock"][var] > 1:
                    guards["violations"] += 1
                counters[var] += 1
                if section:
                    yield Compute(section)
                guards["lock"][var] -= 1
                yield api.lock_release(locks[var])
            elif kind == "rw_read":
                yield api.rw_read_acquire(rwlocks[var])
                guards["readers"][var] += 1
                if guards["writer"][var]:
                    guards["violations"] += 1
                if section:
                    yield Compute(section)
                guards["readers"][var] -= 1
                rw_counts[var] += 1
                yield api.rw_read_release(rwlocks[var])
            elif kind == "rw_write":
                yield api.rw_write_acquire(rwlocks[var])
                guards["writer"][var] += 1
                if guards["writer"][var] > 1 or guards["readers"][var]:
                    guards["violations"] += 1
                rw_counts[var] += 1
                if section:
                    yield Compute(section)
                guards["writer"][var] -= 1
                yield api.rw_write_release(rwlocks[var])
            else:  # rmw
                old = yield RmwOp("fetch_add", rmw_addrs[var], 1)
                rmw_sums[var] = max(rmw_sums[var], old + 1)

    cores = system.cores
    programs = {
        cores[i].core_id: worker(steps)
        for i, steps in enumerate(spec[: len(cores)])
    }
    makespan = system.run_programs(programs)
    final_rmw = [system.mechanism.rmw_value(addr) for addr in rmw_addrs]
    return {
        "counters": counters,
        "rw_counts": rw_counts,
        "rmw": final_rmw,
        "violations": guards["violations"],
        "makespan": makespan,
    }


@settings(max_examples=12, deadline=None)
@given(spec=program_strategy)
def test_all_mechanisms_agree_functionally(spec):
    reference = run_spec("ideal", spec)
    assert reference["violations"] == 0
    for mechanism in MECHANISMS:
        if mechanism == "ideal":
            continue
        outcome = run_spec(mechanism, spec)
        assert outcome["violations"] == 0, mechanism
        assert outcome["counters"] == reference["counters"], mechanism
        assert outcome["rw_counts"] == reference["rw_counts"], mechanism
        assert outcome["rmw"] == reference["rmw"], mechanism


@settings(max_examples=10, deadline=None)
@given(spec=program_strategy)
def test_overflow_path_is_functionally_invisible(spec):
    """A 1-entry ST forces nearly every request through the syncronVar
    memory path; outcomes must match the roomy-ST run exactly."""
    roomy = run_spec("syncron", spec, st_entries=64)
    tight = run_spec("syncron", spec, st_entries=1)
    assert tight["violations"] == 0
    assert tight["counters"] == roomy["counters"]
    assert tight["rw_counts"] == roomy["rw_counts"]
    assert tight["rmw"] == roomy["rmw"]


@settings(max_examples=8, deadline=None)
@given(spec=program_strategy, threads=st.sampled_from((2, 3)))
def test_smt_contexts_preserve_outcomes(spec, threads):
    """The same spec distributed over hardware thread contexts (sharing
    pipelines and L1s) must still produce the expected outcome."""
    config = CONFIG.with_(threads_per_core=threads)
    system = NDPSystem(config, mechanism="syncron")
    locks = [system.create_syncvar(name=f"l{i}") for i in range(3)]
    counters = [0] * 3
    inside = [0] * 3
    violations = [0]

    def worker(steps):
        for kind, var, section, gap in steps:
            if gap:
                yield Compute(gap)
            # Collapse every step kind to a lock section: the property
            # under test is grant correctness across contexts.
            yield api.lock_acquire(locks[var])
            inside[var] += 1
            if inside[var] > 1:
                violations[0] += 1
            counters[var] += 1
            if section:
                yield Compute(section)
            inside[var] -= 1
            yield api.lock_release(locks[var])

    cores = system.cores
    programs = {
        cores[i].core_id: worker(steps)
        for i, steps in enumerate(spec[: len(cores)])
    }
    system.run_programs(programs)
    assert violations[0] == 0
    expected = [0] * 3
    for steps in spec[: len(cores)]:
        for _kind, var, _section, _gap in steps:
            expected[var] += 1
    assert counters == expected
