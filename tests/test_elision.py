"""Event-elision kernel: wait-channels, fast-forward, and sampling.

Four contracts pinned here:

1. Wait-channel arithmetic — a signalled waiter wakes at exactly the cycle
   its explicit poll chain would have succeeded on, with the correct count
   of elided polls, in both kernel modes.
2. Exception parking — a callback that raises mid-bucket leaves the
   un-executed tail of the queue intact; resuming ``run`` fires each
   remaining event exactly once and never re-fires the raiser.
3. Bit-identity — every RunMetrics counter except the reserved ``kernel.*``
   effort counters is identical with ``elide_waits`` on and off, across
   primitives, structures, topologies, mechanisms, and co-runs.
4. Sampling honesty — sampled estimates carry bounds that cover the
   observed error vs. the exact run, spend at most a quarter of the exact
   run's events, and are never written to the result cache.
"""

import pytest

from repro.harness.runner import (
    STATS,
    execute_spec,
    execution_options,
    run_specs,
)
from repro.harness.sampling import (
    flatten_metrics,
    run_sampled,
    sample_plan,
)
from repro.harness.specs import RunSpec
from repro.sim.engine import SimulationError, Simulator
from repro.workloads.base import RunMetrics

# Small machine: 2 units x 3 client cores keeps even bakery scenarios fast.
SMALL = {"num_units": 2, "cores_per_unit": 4, "client_cores_per_unit": 3}


# ----------------------------------------------------------------------
# 1. Wait-channel unit behaviour
# ----------------------------------------------------------------------
def test_signal_wakes_at_first_poll_cycle_with_elided_count():
    # Polls at 3, 10, 17, 24, 31; signal at 25 -> wake at 31, 4 polls failed.
    sim = Simulator(elide_waits=True)
    ch = sim.channel("c")
    woken = []
    sim.schedule(0, lambda: ch.wait(
        lambda polls: woken.append((sim.now, polls)), 3, 7))
    sim.schedule(25, ch.signal)
    sim.run()
    assert woken == [(31, 4)]
    # 4 failed polls + the dead burn on the wake cycle = 5 saved events.
    assert sim.elided_events == 5
    assert ch.wakes == 1 and ch.waiters == 0


def test_signal_before_first_poll_wakes_at_t0():
    sim = Simulator(elide_waits=True)
    ch = sim.channel("c")
    woken = []
    sim.schedule(0, lambda: ch.wait(
        lambda polls: woken.append((sim.now, polls)), 3, 7))
    sim.schedule(1, ch.signal)
    sim.run()
    assert woken == [(3, 0)]
    # No polls failed, but the explicit chain would still have burned the
    # already-armed poll event at t0 — one event saved.
    assert sim.elided_events == 1


def test_explicit_mode_same_wake_extra_burn_events():
    def scenario(elide):
        sim = Simulator(elide_waits=elide)
        ch = sim.channel("c")
        woken = []
        sim.schedule(0, lambda: ch.wait(
            lambda polls: woken.append((sim.now, polls)), 3, 7))
        sim.schedule(25, ch.signal)
        sim.run()
        return woken, sim.events_processed, sim.elided_events

    woken_on, processed_on, elided_on = scenario(True)
    woken_off, processed_off, elided_off = scenario(False)
    assert woken_on == woken_off == [(31, 4)]
    assert elided_on == 5 and elided_off == 0
    # Explicit mode materializes the four failed polls as burn events, plus
    # the already-armed burn landing on the wake cycle itself (a dead no-op:
    # the wake decision was made by the signal, never by a burn) — so the
    # elided counter is exactly the explicit mode's extra event volume.
    assert processed_off == processed_on + elided_on


def test_seen_guard_wakes_immediately_after_missed_signal():
    sim = Simulator(elide_waits=True)
    ch = sim.channel("c")
    woken = []

    def observe_then_wait():
        seen = ch.signals
        ch.signal()  # fires with no waiters: would be lost without `seen`
        ch.wait(lambda polls: woken.append((sim.now, polls)), 5, 9, seen=seen)

    sim.schedule(0, observe_then_wait)
    sim.run()
    assert woken == [(5, 0)]
    assert ch.waiters == 0


def test_wait_validates_delay_and_period():
    sim = Simulator()
    ch = sim.channel("c")
    with pytest.raises(SimulationError):
        ch.wait(lambda polls: None, 0, 5)
    with pytest.raises(SimulationError):
        ch.wait(lambda polls: None, 5, 0)


def test_elidable_timer_accounts_same_ticks_as_explicit():
    def scenario(elide):
        sim = Simulator(elide_waits=elide)
        ticks = [0]
        sim.every(10, lambda: ticks.__setitem__(0, ticks[0] + 1),
                  skip_hook=lambda n: ticks.__setitem__(0, ticks[0] + n))
        sim.schedule(55, lambda: None)  # one real event mid-stream
        sim.run(until=100)
        return ticks[0], sim.now

    ticks_on, now_on = scenario(True)
    ticks_off, now_off = scenario(False)
    assert now_on == now_off == 100
    # Fast-forward must account exactly the ticks the explicit timer fires.
    assert ticks_on == ticks_off > 0


# ----------------------------------------------------------------------
# 2. Exception parking and resume
# ----------------------------------------------------------------------
def _park_scenario():
    sim = Simulator()
    fired = []

    def ok(tag):
        fired.append((sim.now, tag))

    def boom():
        raise RuntimeError("boom")

    sim.schedule(5, ok, "a")
    sim.schedule(5, boom)
    sim.schedule(5, ok, "b")
    sim.schedule(9, ok, "c")
    return sim, fired


def test_exception_parks_unexecuted_tail_fast_path():
    sim, fired = _park_scenario()
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
    # Only the event before the raiser executed; the tail survived.
    assert fired == [(5, "a")]
    assert sim.pending_events == 2
    # Resume: remaining events fire exactly once, the raiser never re-fires.
    sim.run()
    assert fired == [(5, "a"), (5, "b"), (9, "c")]
    assert sim.pending_events == 0


def test_exception_parks_unexecuted_tail_slow_path():
    sim, fired = _park_scenario()
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=20)  # until= forces the slow drain
    assert fired == [(5, "a")]
    assert sim.pending_events == 2
    sim.run(until=20)
    assert fired == [(5, "a"), (5, "b"), (9, "c")]
    assert sim.now == 20


def test_exception_park_preserves_wait_channel_wakeups():
    sim = Simulator(elide_waits=True)
    ch = sim.channel("c")
    woken = []
    sim.schedule(0, lambda: ch.wait(
        lambda polls: woken.append((sim.now, polls)), 2, 4))

    def boom():
        raise RuntimeError("boom")

    sim.schedule(9, ch.signal)
    sim.schedule(9, boom)
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
    # The wake scheduled by the signal was still pending when boom fired.
    sim.run()
    assert woken == [(10, 2)]


# ----------------------------------------------------------------------
# 3. elide_waits on/off bit-identity across the workload matrix
# ----------------------------------------------------------------------
_LOCK = {"primitive": "lock", "interval": 100, "rounds": 10}
_CORUN_TENANTS = [
    {"name": "locky", "workload": "primitive",
     "args": {"primitive": "lock", "interval": 120, "rounds": 6},
     "units": [0]},
    {"name": "stacky", "workload": "structure",
     "args": {"structure": "stack", "ops_per_core": 5},
     "units": [1]},
]

SCENARIOS = [
    ("primitive", _LOCK, "rmw_spin", {}),
    ("primitive", _LOCK, "bakery", {}),
    ("primitive", _LOCK, "syncron", {}),
    ("primitive", _LOCK, "central", {}),
    ("primitive", {"primitive": "barrier", "interval": 60, "rounds": 8},
     "rmw_spin", {}),
    ("primitive", {"primitive": "barrier", "interval": 60, "rounds": 8},
     "bakery", {}),
    ("primitive", {"primitive": "semaphore", "interval": 80, "rounds": 8},
     "rmw_spin", {}),
    ("primitive", {"primitive": "semaphore", "interval": 80, "rounds": 8},
     "bakery", {}),
    ("primitive", {"primitive": "condvar", "interval": 80, "rounds": 6},
     "rmw_spin", {}),
    ("primitive", {"primitive": "condvar", "interval": 80, "rounds": 6},
     "bakery", {}),
    ("structure", {"structure": "stack", "ops_per_core": 6}, "rmw_spin", {}),
    ("structure", {"structure": "stack", "ops_per_core": 6}, "bakery", {}),
    ("structure", {"structure": "queue", "ops_per_core": 6}, "rmw_spin", {}),
    ("primitive", {"primitive": "lock", "interval": 100, "rounds": 8},
     "rmw_spin", {"topology": "ring"}),
    ("primitive", {"primitive": "lock", "interval": 100, "rounds": 8},
     "bakery", {"topology": "ring"}),
    ("rwbench", {"read_pct": 80, "rounds": 8}, "rmw_spin", {}),
    ("corun", {"tenants": _CORUN_TENANTS}, "rmw_spin", {}),
]

_IDS = [
    f"{w}-{args.get('primitive') or args.get('structure') or w}-{mech}"
    + ("-" + "-".join(f"{k}={v}" for k, v in extra.items()) if extra else "")
    for w, args, mech, extra in SCENARIOS
]


def _strip_kernel(result):
    """Drop the reserved simulation-effort counters before comparing."""
    clean = dict(result)
    clean["stats"] = {k: v for k, v in result["stats"].items()
                      if not k.startswith("kernel.")}
    return clean


@pytest.mark.parametrize("workload,args,mechanism,extra", SCENARIOS, ids=_IDS)
def test_elision_on_off_bit_identity(workload, args, mechanism, extra):
    results = {}
    for elide in (True, False):
        overrides = dict(SMALL)
        overrides.update(extra)
        overrides["elide_waits"] = elide
        spec = RunSpec.make(workload, mechanism=mechanism, args=args,
                            overrides=overrides)
        record = execute_spec(spec)
        results[elide] = record["result"]
    # Every physics counter — cycles, energy, bytes, occupancy, per-tenant
    # attribution — must match bit-for-bit; only kernel effort may differ.
    assert _strip_kernel(results[True]) == _strip_kernel(results[False])
    if mechanism in ("rmw_spin", "bakery") and args.get("primitive") != "semaphore":
        # Spin mechanisms must actually exercise elision, or this whole
        # matrix silently tests nothing.  The semaphore microbench is
        # exempt: waiters and posters run in lockstep so tokens are almost
        # always available — its retries resolve through the seen-guard
        # immediate-wake path (still covered by the bit-identity check
        # above) without ever parking long enough to elide a poll.
        assert results[True]["stats"]["kernel.elided_events"] > 0
        assert (results[True]["stats"]["kernel.events_processed"]
                < results[False]["stats"]["kernel.events_processed"])


# ----------------------------------------------------------------------
# 4. Sampled simulation honesty
# ----------------------------------------------------------------------
def test_sample_plan_invariants():
    assert sample_plan(64, 0.125) == (2, 4, 8)
    k0, k1, k2 = sample_plan(50, 0.2)
    assert 1 <= k0 < k1 < k2 < 50
    with pytest.raises(ValueError):
        sample_plan(3, 0.5)  # no room for three distinct points
    with pytest.raises(ValueError):
        sample_plan(100, 1.5)


def test_sampling_bounds_cover_observed_error_and_cut_work():
    spec = RunSpec.make(
        "primitive", mechanism="rmw_spin",
        args={"primitive": "lock", "interval": 150, "rounds": 64},
        overrides=SMALL,
    )
    metrics, report = run_sampled(spec, 0.125)
    exact = RunMetrics.from_dict(execute_spec(spec)["result"])
    flat_exact = flatten_metrics(exact)
    assert report["sampled"] and report["total_rounds"] == 64
    for name, cell in report["counters"].items():
        if name.startswith("stats.kernel."):
            continue  # effort counters describe the shortened runs
        observed = abs(cell["estimate"] - flat_exact.get(name, 0.0))
        assert observed <= cell["bound"], (
            f"{name}: error {observed} escapes bound {cell['bound']}")
    # The whole point: at most a quarter of the exact run's kernel events.
    assert (report["executed_events"]
            <= 0.25 * flat_exact["stats.kernel.events_processed"])
    # The extrapolated metrics are shaped like a real run's.
    assert metrics.mechanism == exact.mechanism
    assert metrics.cycles > 0 and metrics.operations == exact.operations


def test_sampled_results_never_cached(tmp_path):
    spec = RunSpec.make(
        "primitive", mechanism="rmw_spin",
        args={"primitive": "lock", "interval": 150, "rounds": 24},
        overrides=SMALL,
    )
    STATS.reset()
    with execution_options(cache=True, cache_dir=str(tmp_path), sampling=0.2):
        first = run_specs([spec])
        second = run_specs([spec])
    # No approximation may be served back as if it were exact physics.
    assert STATS.executed == 2 and STATS.cache_hits == 0
    assert first[0].cycles == second[0].cycles
    assert not list(tmp_path.rglob("*.json"))


def test_sampling_leaves_exact_specs_exact(tmp_path):
    # A non-sampleable workload under an active fraction still runs exactly.
    spec = RunSpec.make("corun", mechanism="rmw_spin",
                        args={"tenants": _CORUN_TENANTS}, overrides=SMALL)
    with execution_options(cache=False, sampling=0.2):
        record = execute_spec(spec)
    assert "sampling" not in record
    exact = execute_spec(spec)
    assert record["result"] == exact["result"]
