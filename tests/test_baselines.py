"""Mechanism-specific behaviour: Central, Hier, Ideal, flat, SyncLogic."""

import pytest

from repro.core import api
from repro.sim.program import (
    BARRIER_WAIT_ACROSS_UNITS,
    COND_SIGNAL,
    COND_WAIT,
    Compute,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    SEM_POST,
    SEM_WAIT,
)
from repro.sim.syncif import SyncVar
from repro.sync.logic import LogicError, SyncLogic

from repro.testing import build_system


def contended_lock_cycles(config, mechanism, ops=6):
    system = build_system(config, mechanism)
    lock = system.create_syncvar(unit=0)

    def worker():
        for _ in range(ops):
            yield api.lock_acquire(lock)
            yield Compute(10)
            yield api.lock_release(lock)

    system.run_programs({c.core_id: worker() for c in system.cores})
    return system


class TestMechanismOrdering:
    def test_high_contention_ordering(self, quad_config):
        """The paper's high-contention ranking: Ideal < SynCron <= Hier <
        Central (in cycles)."""
        cycles = {
            mech: contended_lock_cycles(quad_config, mech).sim.now
            for mech in ("central", "hier", "syncron", "ideal")
        }
        assert cycles["ideal"] < cycles["syncron"]
        assert cycles["syncron"] <= cycles["hier"]
        assert cycles["hier"] < cycles["central"]

    def test_flat_worse_than_hierarchical_under_contention(self, quad_config):
        flat = contended_lock_cycles(quad_config, "syncron_flat").sim.now
        hier = contended_lock_cycles(quad_config, "syncron").sim.now
        assert hier < flat

    def test_ideal_adds_no_traffic(self, quad_config):
        system = contended_lock_cycles(quad_config, "ideal")
        assert system.stats.sync_messages_local == 0
        assert system.stats.sync_messages_global == 0
        assert system.stats.sync_memory_accesses == 0

    def test_central_funnels_traffic_to_one_unit(self, quad_config):
        system = contended_lock_cycles(quad_config, "central")
        # 3 of 4 units must cross the links for every request.
        assert system.stats.sync_messages_global > system.stats.sync_messages_local

    def test_hier_uses_memory_for_sync_syncron_does_not(self, quad_config):
        hier = contended_lock_cycles(quad_config, "hier")
        syncron = contended_lock_cycles(quad_config, "syncron")
        assert hier.stats.sync_memory_accesses > 0
        assert syncron.stats.sync_memory_accesses == 0  # ST-buffered


class TestServerCostModel:
    def test_server_charges_l1_accesses(self, quad_config):
        system = contended_lock_cycles(quad_config, "hier")
        # server L1s see the sync-state accesses
        assert system.stats.cache_hits + system.stats.cache_misses > 0

    def test_central_server_misses_cross_units(self, quad_config):
        """The Central server's first access to a remote variable's line
        crosses the inter-unit link (part of why Central scales badly)."""
        system = build_system(quad_config, "central")
        remote_var = system.create_syncvar(unit=3)

        def worker():
            yield api.lock_acquire(remote_var)
            yield api.lock_release(remote_var)

        before = system.stats.bytes_across_units
        system.run_programs({0: worker()})
        assert system.stats.bytes_across_units > before


class TestSyncLogic:
    def make_var(self, name="v"):
        return SyncVar(addr=hash(name) % (1 << 20) * 64, unit=0, name=name)

    def test_lock_grant_and_queue(self):
        logic = SyncLogic()
        var = self.make_var()
        assert logic.apply(1, LOCK_ACQUIRE, var) == [1]
        assert logic.apply(2, LOCK_ACQUIRE, var) == []
        assert logic.apply(1, LOCK_RELEASE, var) == [2]
        assert logic.lock_owner(var) == 2

    def test_release_by_non_owner_raises(self):
        logic = SyncLogic()
        var = self.make_var()
        logic.apply(1, LOCK_ACQUIRE, var)
        with pytest.raises(LogicError):
            logic.apply(2, LOCK_RELEASE, var)

    def test_barrier_wakes_all_at_once(self):
        logic = SyncLogic()
        var = self.make_var("b")
        assert logic.apply(1, BARRIER_WAIT_ACROSS_UNITS, var, 3) == []
        assert logic.apply(2, BARRIER_WAIT_ACROSS_UNITS, var, 3) == []
        woken = logic.apply(3, BARRIER_WAIT_ACROSS_UNITS, var, 3)
        assert sorted(woken) == [1, 2, 3]
        # reusable
        assert logic.apply(1, BARRIER_WAIT_ACROSS_UNITS, var, 3) == []

    def test_semaphore_counting(self):
        logic = SyncLogic()
        var = self.make_var("s")
        assert logic.apply(1, SEM_WAIT, var, 1) == [1]
        assert logic.apply(2, SEM_WAIT, var, 1) == []
        assert logic.apply(1, SEM_POST, var) == [2]
        assert logic.apply(2, SEM_POST, var) == []
        assert logic.sem_value(var) == 1

    def test_condvar_wait_releases_lock_and_signal_reacquires(self):
        logic = SyncLogic()
        lock = self.make_var("l")
        cond = self.make_var("c")
        logic.apply(1, LOCK_ACQUIRE, lock)
        assert logic.apply(2, LOCK_ACQUIRE, lock) == []
        # waiter 1 sleeps; the lock passes to 2.
        assert logic.apply(1, COND_WAIT, cond, lock) == [2]
        # 2 signals then releases: 1 re-acquires and wakes.
        assert logic.apply(2, COND_SIGNAL, cond) == []
        assert logic.apply(2, LOCK_RELEASE, lock) == [1]

    def test_signal_with_no_waiters_is_noop(self):
        logic = SyncLogic()
        cond = self.make_var("c")
        assert logic.apply(1, COND_SIGNAL, cond) == []

    def test_kind_mismatch_raises(self):
        logic = SyncLogic()
        var = self.make_var()
        logic.apply(1, LOCK_ACQUIRE, var)
        with pytest.raises(LogicError):
            logic.apply(2, SEM_WAIT, var, 1)

    def test_waiters_introspection(self):
        logic = SyncLogic()
        var = self.make_var()
        logic.apply(1, LOCK_ACQUIRE, var)
        logic.apply(2, LOCK_ACQUIRE, var)
        logic.apply(3, LOCK_ACQUIRE, var)
        assert logic.waiters(var) == 2
