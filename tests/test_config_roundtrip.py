"""Property-style serialization coverage for :class:`SystemConfig`.

Every field is perturbed away from its default one at a time; for each
variant ``SystemConfig.from_dict(config.as_dict())`` must reproduce the
config exactly (including through a JSON round-trip, which is what the
result cache stores) and ``stable_hash`` must move — a field the hash is
blind to would silently alias distinct experiments in the cache.

This is the dynamic twin of lint rule RP003, which checks the same
coverage statically.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.sim.config import DramTiming, EnergyParams, SystemConfig

# One type-appropriate non-default value per field.  A new SystemConfig
# field must be added here or the parametrized tests below fail on it —
# by design: serialization coverage is opt-in per field, never implicit.
PERTURBATIONS = {
    "num_units": 2,
    "cores_per_unit": 8,
    "client_cores_per_unit": 7,
    "threads_per_core": 2,
    "memory": dataclasses.replace(SystemConfig().memory, act_ns=9.0),
    "unit_memory_bytes": 1 << 29,
    "cache_line_bytes": 128,
    "l1_size_bytes": 32768,
    "l1_ways": 4,
    "l1_hit_cycles": 5,
    "hop_cycles": 2,
    "arbiter_cycles": 2,
    "local_hops": 3,
    "crossbar_bytes_per_cycle": 64.0,
    "link_latency_ns": 55.0,
    "link_bandwidth_gbps": 25.6,
    "topology": "mesh2d",
    "topo_rows": 2,
    "link_profile": ((0, 1, 3.2, 80.0),),
    "routing_policy": "adaptive",
    "fault_seed": 7,
    "fault_links": ((0, 1, 100),),
    "fault_units": ((0, 100),),
    "fault_link_rate": 0.1,
    "fault_transient_rate": 0.05,
    "fault_window_cycles": 10000,
    "fault_repair_cycles": 2000,
    "st_entries": 128,
    "indexing_counters": 512,
    "se_service_se_cycles": 20,
    "fairness_threshold": 3,
    "async_issue_cycles": 2,
    "overflow_target": "llc",
    "shared_cache_hit_cycles": 40,
    "spin_backoff_cycles": 64,
    "elide_waits": False,
    "server_handler_instructions": 30,
    "server_handler_accesses": 4,
    "energy": dataclasses.replace(SystemConfig().energy, cache_hit_pj=99.0),
    "seed": 1,
}

# Some perturbations only survive canonicalization alongside another
# field: topo_rows is deliberately reset to 0 on non-grid topologies.
BASE_OVERRIDES = {
    "topo_rows": {"topology": "mesh2d"},
}

FIELD_NAMES = [f.name for f in dataclasses.fields(SystemConfig)]


def _pair(field):
    """(default-ish base, base with ``field`` perturbed)."""
    base = dataclasses.replace(SystemConfig(),
                               **BASE_OVERRIDES.get(field, {}))
    varied = dataclasses.replace(base, **{field: PERTURBATIONS[field]})
    return base, varied


def test_perturbation_table_covers_every_field():
    """Fails when a field is added without extending PERTURBATIONS."""
    assert sorted(PERTURBATIONS) == sorted(FIELD_NAMES)


@pytest.mark.parametrize("field", FIELD_NAMES)
def test_perturbation_actually_changes_the_field(field):
    base, varied = _pair(field)
    assert getattr(varied, field) != getattr(base, field)


@pytest.mark.parametrize("field", FIELD_NAMES)
def test_dict_roundtrip_per_field(field):
    _, config = _pair(field)
    assert SystemConfig.from_dict(config.as_dict()) == config


@pytest.mark.parametrize("field", FIELD_NAMES)
def test_json_roundtrip_per_field(field):
    """The cache stores JSON, so tuples travel as lists and must be
    re-normalized on the way back in."""
    _, config = _pair(field)
    payload = json.loads(json.dumps(config.as_dict()))
    restored = SystemConfig.from_dict(payload)
    assert restored == config
    assert restored.stable_hash() == config.stable_hash()


@pytest.mark.parametrize("field", FIELD_NAMES)
def test_stable_hash_sensitive_to_field(field):
    base, varied = _pair(field)
    assert varied.stable_hash() != base.stable_hash(), (
        f"stable_hash is blind to {field!r}: distinct configs would "
        f"collide in the result cache")


def test_nested_dataclasses_roundtrip_from_plain_dicts():
    config = SystemConfig()
    payload = config.as_dict()
    assert isinstance(payload["memory"], dict)
    assert isinstance(payload["energy"], dict)
    restored = SystemConfig.from_dict(payload)
    assert isinstance(restored.memory, DramTiming)
    assert isinstance(restored.energy, EnergyParams)


def test_from_dict_rejects_unknown_fields():
    payload = SystemConfig().as_dict()
    payload["warp_drive"] = 9
    with pytest.raises(ValueError, match="warp_drive"):
        SystemConfig.from_dict(payload)


def test_stable_hash_is_deterministic_text():
    a, b = SystemConfig(), SystemConfig()
    assert a.stable_hash() == b.stable_hash()
    assert len(a.stable_hash()) == 64
    int(a.stable_hash(), 16)  # hex digest


def test_default_config_validates():
    SystemConfig().validate()


@pytest.mark.parametrize("field,bad", [
    ("fairness_threshold", -1),
    ("spin_backoff_cycles", -1),
    ("l1_hit_cycles", 0),
    ("link_bandwidth_gbps", 0.0),
    ("unit_memory_bytes", 1),
    ("seed", True),
])
def test_validate_rejects_out_of_range_timing_fields(field, bad):
    config = dataclasses.replace(SystemConfig(), **{field: bad})
    with pytest.raises((ValueError, TypeError)):
        config.validate()
