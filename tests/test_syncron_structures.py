"""Unit tests for SynCron's hardware structures: messages, ST, indexing
counters, syncronVar, and the area model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.area import se_area, table4_comparison, table8_rows
from repro.core.indexing import IndexingCounters
from repro.core.messages import (
    ACQUIRE_OPCODES,
    GLOBAL_OPCODES,
    LOCAL_OPCODES,
    Message,
    Opcode,
    OVERFLOW_OPCODES,
    RELEASE_OPCODES,
    REQUEST_BITS,
    REQUEST_BYTES,
    RESPONSE_BYTES,
)
from repro.core.sync_table import STEntry, STFullError, SynchronizationTable
from repro.core.syncronvar import SyncronVar, SyncronVarStore
from repro.sim.syncif import SyncVar


class TestMessages:
    def test_request_encoding_is_140_bits(self):
        # Fig. 5: 64 + 6 + 6 + 64.
        assert REQUEST_BITS == 140
        assert REQUEST_BYTES == 18
        assert RESPONSE_BYTES == 19

    def test_opcode_families_are_disjoint_and_cover_all(self):
        families = LOCAL_OPCODES | GLOBAL_OPCODES | OVERFLOW_OPCODES
        assert families == set(Opcode)

    def test_acquire_release_classification(self):
        assert Opcode.LOCK_ACQUIRE_LOCAL in ACQUIRE_OPCODES
        assert Opcode.LOCK_RELEASE_LOCAL in RELEASE_OPCODES
        assert Opcode.LOCK_GRANT_LOCAL not in ACQUIRE_OPCODES | RELEASE_OPCODES

    def test_grant_messages_use_response_size(self):
        var = SyncVar(addr=0, unit=0)
        req = Message(Opcode.LOCK_ACQUIRE_LOCAL, var, core=1)
        grant = Message(Opcode.LOCK_GRANT_GLOBAL, var, src_se=0)
        assert req.bytes == REQUEST_BYTES
        assert grant.bytes == RESPONSE_BYTES

    def test_barrier_local_opcodes_are_local(self):
        assert Opcode.BARRIER_WAIT_LOCAL_WITHIN_UNIT in LOCAL_OPCODES
        assert Opcode.BARRIER_WAIT_LOCAL_ACROSS_UNITS in LOCAL_OPCODES


class TestSynchronizationTable:
    def var(self, addr=0x1000):
        return SyncVar(addr=addr, unit=0)

    def test_allocate_and_lookup(self):
        table = SynchronizationTable(4)
        var = self.var()
        entry = table.allocate(var)
        assert table.lookup(var.addr) is entry
        assert table.occupied == 1

    def test_capacity_enforced(self):
        table = SynchronizationTable(2)
        table.allocate(self.var(0x0))
        table.allocate(self.var(0x40))
        assert table.is_full
        with pytest.raises(STFullError):
            table.allocate(self.var(0x80))

    def test_double_allocate_rejected(self):
        table = SynchronizationTable(4)
        var = self.var()
        table.allocate(var)
        with pytest.raises(ValueError):
            table.allocate(var)

    def test_release(self):
        table = SynchronizationTable(2)
        var = self.var()
        table.allocate(var)
        table.release(var.addr)
        assert table.lookup(var.addr) is None
        with pytest.raises(KeyError):
            table.release(var.addr)

    def test_release_if_idle_keeps_busy_entries(self):
        table = SynchronizationTable(2)
        entry = table.allocate(self.var())
        entry.local_waitlist.append(3)
        assert not table.release_if_idle(entry)
        entry.local_waitlist.clear()
        assert table.release_if_idle(entry)

    def test_entry_idle_predicate(self):
        entry = STEntry(addr=0, var=None)
        assert entry.is_idle()
        entry.local_owner = 5
        assert not entry.is_idle()
        entry.local_owner = None
        entry.pending_global = True
        assert not entry.is_idle()

    def test_peak_occupancy_tracked(self):
        table = SynchronizationTable(8)
        for i in range(5):
            table.allocate(self.var(i * 64))
        assert table.peak_occupancy == 5

    @given(st.integers(min_value=1, max_value=64))
    def test_occupancy_never_exceeds_capacity(self, capacity):
        table = SynchronizationTable(capacity)
        for i in range(capacity * 2):
            try:
                table.allocate(self.var(i * 64))
            except STFullError:
                break
            assert table.occupied <= capacity


class TestIndexingCounters:
    def test_aliasing_uses_line_address_lsbs(self):
        counters = IndexingCounters(num_counters=256, line_bytes=64)
        assert counters.index_of(0) == 0
        assert counters.index_of(64) == 1
        assert counters.index_of(256 * 64) == 0  # wraps

    def test_increment_decrement(self):
        counters = IndexingCounters(16)
        counters.increment(0)
        assert counters.is_memory_serviced(0)
        counters.decrement(0)
        assert not counters.is_memory_serviced(0)

    def test_underflow_raises(self):
        counters = IndexingCounters(16)
        with pytest.raises(ValueError):
            counters.decrement(0)

    def test_aliased_variables_share_a_counter(self):
        counters = IndexingCounters(num_counters=4, line_bytes=64)
        counters.increment(0)
        # address 4*64 aliases to counter 0 as well.
        assert counters.is_memory_serviced(4 * 64)

    def test_total_active(self):
        counters = IndexingCounters(8)
        counters.increment(0)
        counters.increment(64)
        assert counters.total_active == 2


class TestSyncronVar:
    def test_size_matches_struct_layout(self):
        # Fig. 9: uint16 Waitlist[4] + uint64 VarInfo + uint8 OverflowInfo.
        sv = SyncronVar(addr=0, num_ses=4)
        assert sv.size_bytes == 2 * 4 + 8 + 1

    def test_overflow_bits(self):
        sv = SyncronVar(addr=0, num_ses=4)
        sv.set_overflowed(2)
        sv.set_overflowed(0)
        assert sv.is_overflowed(2)
        assert sv.overflowed_ses() == [0, 2]
        sv.clear_overflowed(2)
        assert sv.overflowed_ses() == [0]

    def test_store_lazy_creation(self):
        store = SyncronVarStore(num_ses=4)
        assert store.lookup(0x40) is None
        sv = store.get_or_create(0x40)
        assert store.lookup(0x40) is sv
        assert 0x40 in store
        store.drop(0x40)
        assert len(store) == 0


class TestAreaModel:
    def test_table8_reference_point(self):
        report = se_area(64, 256)
        assert report.total_mm2 == pytest.approx(0.0461, abs=1e-4)
        assert report.power_mw == pytest.approx(2.7, abs=0.01)
        # Paper: SE is ~10% of an ARM Cortex-A7's area.
        assert report.fraction_of_cortex_a7_area < 0.11

    def test_area_scales_with_st_entries(self):
        small = se_area(16, 256)
        big = se_area(256, 256)
        assert small.total_mm2 < se_area(64, 256).total_mm2 < big.total_mm2

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            se_area(0, 256)

    def test_table_renderers(self):
        rows8 = table8_rows()
        assert rows8[0]["component"].startswith("SE")
        rows4 = table4_comparison()
        assert [r["scheme"] for r in rows4] == ["SSB", "LCU", "MiSAR", "SynCron"]
        syncron = rows4[-1]
        assert syncron["primitives"] == "4"
        assert syncron["target_system"] == "non-uniform"
        assert syncron["overflow"] == "fully integrated"
