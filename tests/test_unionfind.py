"""Union-find connectivity under a reader-writer lock."""

import pytest

from repro.sim.config import ndp_2_5d
from repro.workloads.base import run_workload
from repro.workloads.graphs.datasets import Graph, load_dataset
from repro.workloads.unionfind import SequentialUnionFind, UnionFindWorkload

from repro.testing import build_system


class TestSequentialUnionFind:
    def test_singletons(self):
        forest = SequentialUnionFind(5)
        assert forest.components() == 5

    def test_union_merges(self):
        forest = SequentialUnionFind(4)
        assert forest.union(0, 1) is True
        assert forest.union(2, 3) is True
        assert forest.components() == 2
        assert forest.union(1, 2) is True
        assert forest.components() == 1

    def test_redundant_union_returns_false(self):
        forest = SequentialUnionFind(3)
        forest.union(0, 1)
        assert forest.union(1, 0) is False

    def test_find_is_idempotent_after_path_halving(self):
        forest = SequentialUnionFind(6)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            forest.union(a, b)
        root = forest.find(0)
        assert all(forest.find(v) == root for v in range(5))
        assert forest.find(5) == 5

    def test_union_by_size_keeps_larger_root(self):
        forest = SequentialUnionFind(5)
        forest.union(0, 1)
        forest.union(0, 2)   # component of size 3 rooted somewhere
        big_root = forest.find(0)
        forest.union(3, 4)
        forest.union(0, 3)
        assert forest.find(3) == big_root


@pytest.mark.parametrize("mechanism", ("syncron", "ideal", "rmw_spin"))
class TestUnionFindWorkload:
    def test_components_match_reference(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        workload = UnionFindWorkload("wk", edge_limit=150)
        workload.run(system)  # verify() raises on any divergence
        assert workload.components >= 1

    def test_mutex_mode_same_outcome(self, tiny_config, mechanism):
        components = {}
        for mode in (False, True):
            system = build_system(tiny_config, mechanism)
            workload = UnionFindWorkload("wk", mutex_mode=mode, edge_limit=150)
            workload.run(system)
            components[mode] = workload.components
        assert components[False] == components[True]


class TestUnionFindCost:
    def test_rw_lock_beats_mutex_on_read_dominated_stream(self):
        """Dense graphs make most edges redundant (same-set finds), so the
        read-locked phase dominates and the rw lock wins."""
        config = ndp_2_5d(num_units=2, cores_per_unit=4, client_cores_per_unit=3)
        cycles = {}
        for mode in (False, True):
            metrics = run_workload(
                lambda: UnionFindWorkload("wk", mutex_mode=mode, edge_limit=300),
                config, "syncron",
            )
            cycles[mode] = metrics.cycles
        assert cycles[False] < cycles[True]

    def test_every_edge_processed_once(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        workload = UnionFindWorkload("wk", edge_limit=120)
        metrics = workload.run(system)
        assert metrics.operations == 120

    def test_disconnected_graph(self, tiny_config):
        """Two cliques with no crossing edges: exactly 2 components (plus
        untouched isolated vertices)."""
        adjacency = [[] for _ in range(8)]
        for group in (range(0, 4), range(4, 8)):
            group = list(group)
            for i in group:
                for j in group:
                    if i != j:
                        adjacency[i].append(j)
        graph = Graph(name="cliques", num_vertices=8, adjacency=adjacency, seed=1)
        system = build_system(tiny_config, "syncron")
        workload = UnionFindWorkload(graph=graph)
        workload.run(system)
        assert workload.components == 2

    def test_edge_limit_caps_work(self, tiny_config):
        full = len(list(load_dataset("wk").edges()))
        system = build_system(tiny_config, "syncron")
        workload = UnionFindWorkload("wk", edge_limit=min(60, full))
        metrics = workload.run(system)
        assert metrics.operations == min(60, full)
