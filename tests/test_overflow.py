"""ST overflow management (paper Sec. 4.3) and the MiSAR-style variants."""

import random

import pytest

from repro.core import api
from repro.sim.program import Compute

from repro.testing import build_system


def lock_coupling_workload(system, num_locks, ops_per_core, seed=0):
    """Each core holds two locks at a time from a large pool (the linked
    list / BST_FG pattern that drives ST overflow)."""
    locks = [system.create_syncvar(name=f"L{i}") for i in range(num_locks)]
    state = {"count": 0, "holders": {}}

    def worker(core_id):
        rng = random.Random(seed ^ core_id)
        for _ in range(ops_per_core):
            i = rng.randrange(num_locks - 1)
            first, second = locks[i], locks[i + 1]
            yield api.lock_acquire(first)
            assert state["holders"].setdefault(first.addr) is None
            state["holders"][first.addr] = core_id
            yield api.lock_acquire(second)
            assert state["holders"].setdefault(second.addr) is None
            state["holders"][second.addr] = core_id
            state["count"] += 1
            yield Compute(10)
            state["holders"][second.addr] = None
            yield api.lock_release(second)
            state["holders"][first.addr] = None
            yield api.lock_release(first)

    programs = {c.core_id: worker(c.core_id) for c in system.cores}
    system.run_programs(programs)
    return state


class TestIntegratedOverflow:
    def test_tiny_st_overflows_but_stays_correct(self, quad_config):
        config = quad_config.with_(st_entries=2)
        system = build_system(config, "syncron")
        state = lock_coupling_workload(system, num_locks=32, ops_per_core=8)
        assert state["count"] == 8 * len(system.cores)
        assert system.stats.st_overflow_requests > 0
        assert system.stats.overflow_request_pct > 0

    def test_overflow_state_drains_completely(self, quad_config):
        config = quad_config.with_(st_entries=2)
        system = build_system(config, "syncron")
        lock_coupling_workload(system, num_locks=32, ops_per_core=8)
        for se in system.mechanism.ses:
            assert se.st.occupied == 0, "leaked ST entries"
            assert se.counters.total_active == 0, "leaked indexing counters"
            assert len(se.store) == 0, "leaked syncronVar structures"
            assert len(se._redirected) == 0, "leaked overflow episodes"

    def test_large_st_never_overflows(self, quad_config):
        system = build_system(quad_config.with_(st_entries=64), "syncron")
        lock_coupling_workload(system, num_locks=12, ops_per_core=6)
        assert system.stats.st_overflow_requests == 0

    def test_overflow_uses_memory_not_extra_hardware(self, quad_config):
        """Overflowed requests must show up as sync memory accesses."""
        config = quad_config.with_(st_entries=2)
        system = build_system(config, "syncron")
        lock_coupling_workload(system, num_locks=32, ops_per_core=8)
        assert system.stats.sync_memory_accesses > 0

    def test_overflow_slower_than_st_path(self, quad_config):
        cycles = {}
        for st in (2, 1024):
            system = build_system(quad_config.with_(st_entries=st), "syncron")
            lock_coupling_workload(system, num_locks=32, ops_per_core=8)
            cycles[st] = system.sim.now
        assert cycles[2] > cycles[1024]

    def test_barrier_under_overflow(self, quad_config):
        config = quad_config.with_(st_entries=1)
        system = build_system(config, "syncron")
        bar = system.create_syncvar(unit=0)
        locks = [system.create_syncvar() for _ in range(16)]
        n = len(system.cores)
        phases = {"done": 0}

        def worker(core_id):
            rng = random.Random(core_id)
            for _ in range(3):
                lock = locks[rng.randrange(len(locks))]
                yield api.lock_acquire(lock)
                yield Compute(5)
                yield api.lock_release(lock)
                yield api.barrier_wait_across_units(bar, n)
            phases["done"] += 1

        system.run_programs({c.core_id: worker(c.core_id) for c in system.cores})
        assert phases["done"] == n

    def test_semaphore_under_overflow(self, quad_config):
        config = quad_config.with_(st_entries=1)
        system = build_system(config, "syncron")
        sem = system.create_syncvar(unit=1)
        locks = [system.create_syncvar() for _ in range(8)]
        state = {"inside": 0, "max": 0, "ops": 0}

        def worker(core_id):
            rng = random.Random(core_id)
            for _ in range(4):
                lock = locks[rng.randrange(len(locks))]
                yield api.lock_acquire(lock)
                yield api.lock_release(lock)
                yield api.sem_wait(sem, 2)
                state["inside"] += 1
                state["max"] = max(state["max"], state["inside"])
                yield Compute(10)
                state["inside"] -= 1
                state["ops"] += 1
                yield api.sem_post(sem)

        system.run_programs({c.core_id: worker(c.core_id) for c in system.cores})
        assert state["max"] <= 2
        assert state["ops"] == 4 * len(system.cores)

    def test_indexing_counter_aliasing_is_safe(self, quad_config):
        """With one indexing counter, every variable aliases together —
        correctness must survive (only performance may suffer)."""
        config = quad_config.with_(st_entries=2, indexing_counters=1)
        system = build_system(config, "syncron")
        state = lock_coupling_workload(system, num_locks=24, ops_per_core=6)
        assert state["count"] == 6 * len(system.cores)


@pytest.mark.parametrize(
    "mechanism", ("syncron_central_ovrfl", "syncron_distrib_ovrfl")
)
class TestAbortOverflowVariants:
    def test_correct_under_heavy_overflow(self, quad_config, mechanism):
        config = quad_config.with_(st_entries=2)
        system = build_system(config, mechanism)
        state = lock_coupling_workload(system, num_locks=32, ops_per_core=8)
        assert state["count"] == 8 * len(system.cores)
        assert system.stats.st_overflow_requests > 0

    def test_no_overflow_means_identical_behaviour(self, quad_config, mechanism):
        results = {}
        for mech in ("syncron", mechanism):
            system = build_system(quad_config.with_(st_entries=1024), mech)
            lock_coupling_workload(system, num_locks=8, ops_per_core=5)
            results[mech] = system.sim.now
        assert results[mechanism] == results["syncron"]

    def test_fallback_variables_switch_back(self, quad_config, mechanism):
        config = quad_config.with_(st_entries=2)
        system = build_system(config, mechanism)
        lock_coupling_workload(system, num_locks=32, ops_per_core=8)
        assert not system.mechanism._fallback_vars, "stuck in fallback mode"
        assert all(v == 0 for v in system.mechanism._inflight.values())


class TestCentralVsDistribOverflow:
    def test_central_fallback_is_slowest(self, quad_config):
        """One fallback server for everything serializes worse than one per
        unit (the Fig. 23 ordering between the two MiSAR variants)."""
        cycles = {}
        for mech in ("syncron_central_ovrfl", "syncron_distrib_ovrfl"):
            system = build_system(quad_config.with_(st_entries=2), mech)
            lock_coupling_workload(system, num_locks=48, ops_per_core=10)
            cycles[mech] = system.sim.now
        assert cycles["syncron_central_ovrfl"] > cycles["syncron_distrib_ovrfl"]
