"""The lint engine's own coverage: every rule must catch an injected
violation (positive fixture), ignore the compliant twin (negative), honour
``# repro: noqa`` inline suppressions and baseline entries, and the CLI
must exit non-zero on new findings — that is the property the CI gate
rests on.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.base import RULES, noqa_map
from repro.analysis.engine import (
    LintError,
    default_baseline_path,
    default_source_root,
    lint_package,
    lint_paths,
    load_baseline,
    write_baseline,
)


def lint_source(tmp_path: Path, module_path: str, source: str, *,
                rule_ids=None, baseline=None):
    """Lint one synthetic module placed at ``module_path`` under a fake
    source root, e.g. ``repro/sim/fake.py``."""
    path = tmp_path / module_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([path], tmp_path, rule_ids, baseline=baseline)


def rules_hit(report):
    return sorted({f.rule for f in report.findings})


# ----------------------------------------------------------------------
# RP001: nondeterminism sources
# ----------------------------------------------------------------------
class TestRP001:
    def test_positive_each_source(self, tmp_path):
        src = (
            "import os, random, time\n"
            "def f(name, x):\n"
            "    a = time.time()\n"
            "    b = random.randrange(4)\n"
            "    c = hash(name)\n"
            "    d = id(x)\n"
            "    e = os.urandom(8)\n"
            "    return a, b, c, d, e\n"
        )
        report = lint_source(tmp_path, "repro/sim/fake.py", src,
                             rule_ids=["RP001"])
        assert len(report.findings) == 5
        assert rules_hit(report) == ["RP001"]

    def test_negative_seeded_rng_and_crc(self, tmp_path):
        src = (
            "import random, zlib\n"
            "from time import perf_counter\n"
            "def f(name):\n"
            "    rng = random.Random(42)\n"
            "    seed = zlib.crc32(name.encode())\n"
            "    return rng.randrange(4), seed\n"
        )
        report = lint_source(tmp_path, "repro/sim/fake.py", src,
                             rule_ids=["RP001"])
        assert report.findings == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        """Harness/telemetry code may read wall-clock time."""
        src = "import time\nNOW = time.time()\n"
        report = lint_source(tmp_path, "repro/harness/fake.py", src,
                             rule_ids=["RP001"])
        assert report.findings == []

    def test_noqa_suppresses(self, tmp_path):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa RP001\n"
        )
        report = lint_source(tmp_path, "repro/sim/fake.py", src,
                             rule_ids=["RP001"])
        assert report.findings == []
        assert report.suppressed_count == 1

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa RP002\n"
        )
        report = lint_source(tmp_path, "repro/sim/fake.py", src,
                             rule_ids=["RP001"])
        assert len(report.findings) == 1

    def test_baselined_finding_reported_separately(self, tmp_path):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )
        first = lint_source(tmp_path, "repro/sim/fake.py", src,
                            rule_ids=["RP001"])
        assert len(first.findings) == 1
        baseline = {f.fingerprint(): "known" for f in first.findings}
        second = lint_source(tmp_path, "repro/sim/fake.py", src,
                             rule_ids=["RP001"], baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.clean


# ----------------------------------------------------------------------
# RP002: unordered set iteration
# ----------------------------------------------------------------------
class TestRP002:
    def test_positive_for_loop_over_set(self, tmp_path):
        src = (
            "def route(units):\n"
            "    targets = set(units)\n"
            "    for u in targets:\n"
            "        yield u\n"
        )
        report = lint_source(tmp_path, "repro/sim/topo/fake.py", src,
                             rule_ids=["RP002"])
        assert len(report.findings) == 1

    def test_positive_set_literal_and_comprehension(self, tmp_path):
        src = (
            "def f(xs):\n"
            "    a = [v for v in {1, 2, 3}]\n"
            "    b = list(frozenset(xs))\n"
            "    return a, b\n"
        )
        report = lint_source(tmp_path, "repro/workloads/graphs/fake.py", src,
                             rule_ids=["RP002"])
        assert len(report.findings) == 2

    def test_negative_sorted_wrapper(self, tmp_path):
        src = (
            "def route(units):\n"
            "    targets = set(units)\n"
            "    for u in sorted(targets):\n"
            "        yield u\n"
        )
        report = lint_source(tmp_path, "repro/sim/topo/fake.py", src,
                             rule_ids=["RP002"])
        assert report.findings == []

    def test_negative_membership_only(self, tmp_path):
        src = (
            "def f(xs, y):\n"
            "    seen = set(xs)\n"
            "    return y in seen\n"
        )
        report = lint_source(tmp_path, "repro/sim/topo/fake.py", src,
                             rule_ids=["RP002"])
        assert report.findings == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        src = "def f(xs):\n    return [v for v in set(xs)]\n"
        report = lint_source(tmp_path, "repro/harness/fake.py", src,
                             rule_ids=["RP002"])
        assert report.findings == []


# ----------------------------------------------------------------------
# RP003: SystemConfig field coverage
# ----------------------------------------------------------------------
_CONFIG_TEMPLATE = """\
from dataclasses import asdict, dataclass, fields

@dataclass(frozen=True)
class SystemConfig:
    num_units: int = 4
    new_knob: int = 1

    def as_dict(self):
        return {as_dict_body}

    @classmethod
    def from_dict(cls, data):
        return {from_dict_body}

    def stable_hash(self):
        return str(sorted({hash_body}.items()))

    def validate(self):
        if self.num_units < 1:
            raise ValueError("bad")
{validate_extra}
"""


class TestRP003:
    def test_full_coverage_idioms_pass(self, tmp_path):
        src = _CONFIG_TEMPLATE.format(
            as_dict_body="asdict(self)",
            from_dict_body="cls(**data)",
            hash_body="self.as_dict()",
            validate_extra="        if self.new_knob < 0:\n"
                           "            raise ValueError('bad knob')\n",
        )
        report = lint_source(tmp_path, "repro/sim/config.py", src,
                             rule_ids=["RP003"])
        assert report.findings == []

    def test_field_missing_from_enumerating_as_dict(self, tmp_path):
        src = _CONFIG_TEMPLATE.format(
            as_dict_body='{"num_units": self.num_units}',
            from_dict_body="cls(**data)",
            hash_body="self.as_dict()",
            validate_extra="        if self.new_knob < 0:\n"
                           "            raise ValueError('bad knob')\n",
        )
        report = lint_source(tmp_path, "repro/sim/config.py", src,
                             rule_ids=["RP003"])
        assert [f for f in report.findings if "as_dict" in f.message]

    def test_unvalidated_field_flagged(self, tmp_path):
        src = _CONFIG_TEMPLATE.format(
            as_dict_body="asdict(self)",
            from_dict_body="cls(**data)",
            hash_body="self.as_dict()",
            validate_extra="",
        )
        report = lint_source(tmp_path, "repro/sim/config.py", src,
                             rule_ids=["RP003"])
        messages = [f.message for f in report.findings]
        assert any("new_knob" in m and "never read" in m for m in messages)

    def test_real_config_is_fully_covered(self):
        """The dataclass in the tree must satisfy its own rule."""
        root = default_source_root()
        report = lint_paths([root / "repro" / "sim" / "config.py"], root,
                            ["RP003"])
        assert report.findings == []


# ----------------------------------------------------------------------
# RP004: closure-capturing scheduling
# ----------------------------------------------------------------------
class TestRP004:
    def test_positive_lambda_to_schedule(self, tmp_path):
        src = (
            "def f(sim, x):\n"
            "    sim.schedule(5, lambda: x.fire())\n"
        )
        report = lint_source(tmp_path, "repro/sync/fake.py", src,
                             rule_ids=["RP004"])
        assert len(report.findings) == 1

    def test_negative_bound_method_with_args(self, tmp_path):
        src = (
            "def f(sim, x):\n"
            "    sim.schedule(5, x.fire, 1, 2)\n"
            "    sim.schedule_at(9, x.fire)\n"
        )
        report = lint_source(tmp_path, "repro/sync/fake.py", src,
                             rule_ids=["RP004"])
        assert report.findings == []


# ----------------------------------------------------------------------
# RP005: observer purity
# ----------------------------------------------------------------------
class TestRP005:
    def test_positive_physics_write_from_telemetry(self, tmp_path):
        src = (
            "def export(stats):\n"
            "    stats.cache_hits = 0\n"
        )
        report = lint_source(tmp_path, "repro/telemetry.py", src,
                             rule_ids=["RP005"])
        assert len(report.findings) == 1

    def test_positive_extra_write_from_engine(self, tmp_path):
        src = (
            "def account(stats):\n"
            "    stats.extra['spin_retries'] += 1\n"
        )
        report = lint_source(tmp_path, "repro/sim/engine.py", src,
                             rule_ids=["RP005"])
        assert len(report.findings) == 1

    def test_negative_reads_and_own_state(self, tmp_path):
        src = (
            "def export(stats, sink):\n"
            "    sink.total = stats.cache_hits + stats.cache_misses\n"
        )
        report = lint_source(tmp_path, "repro/telemetry.py", src,
                             rule_ids=["RP005"])
        assert report.findings == []

    def test_out_of_scope_component_may_write(self, tmp_path):
        src = "def bump(stats):\n    stats.cache_hits += 1\n"
        report = lint_source(tmp_path, "repro/sim/cache.py", src,
                             rule_ids=["RP005"])
        assert report.findings == []


# ----------------------------------------------------------------------
# RP006: counter-key inventory
# ----------------------------------------------------------------------
class TestRP006:
    def test_positive_typoed_key(self, tmp_path):
        src = (
            "def bump(stats):\n"
            "    stats.extra['bakey_polls'] += 1\n"
        )
        report = lint_source(tmp_path, "repro/sync/fake.py", src,
                             rule_ids=["RP006"])
        assert len(report.findings) == 1
        assert "not declared" in report.findings[0].message

    def test_positive_non_literal_key(self, tmp_path):
        src = (
            "def bump(stats, key):\n"
            "    stats.extra[key] += 1\n"
        )
        report = lint_source(tmp_path, "repro/sync/fake.py", src,
                             rule_ids=["RP006"])
        assert len(report.findings) == 1
        assert "non-literal" in report.findings[0].message

    def test_negative_declared_key(self, tmp_path):
        src = (
            "def bump(stats):\n"
            "    stats.extra['spin_retries'] += 1\n"
        )
        report = lint_source(tmp_path, "repro/sync/fake.py", src,
                             rule_ids=["RP006"])
        assert report.findings == []

    def test_inventory_covers_every_bump_site_in_tree(self):
        """Meta-check: the declared inventory matches actual usage."""
        report = lint_package(rule_ids=["RP006"])
        assert report.findings == []


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEngine:
    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(LintError):
            lint_source(tmp_path, "repro/sim/fake.py", "x = 1\n",
                        rule_ids=["RP999"])

    def test_unparsable_file_is_an_error(self, tmp_path):
        with pytest.raises(LintError):
            lint_source(tmp_path, "repro/sim/fake.py", "def broken(:\n")

    def test_registry_has_all_six_rules(self):
        assert sorted(RULES) == ["RP001", "RP002", "RP003",
                                 "RP004", "RP005", "RP006"]

    def test_noqa_map_parses_rule_lists(self):
        lines = [
            "x = 1  # repro: noqa",
            "y = 2  # repro: noqa RP001, RP003",
            "z = 3",
        ]
        m = noqa_map(lines)
        assert m[1] is None
        assert m[2] == frozenset({"RP001", "RP003"})
        assert 3 not in m

    def test_fingerprint_survives_line_drift(self, tmp_path):
        src = "import time\ndef f():\n    return time.time()\n"
        drifted = "import time\n\n\ndef f():\n    return time.time()\n"
        first = lint_source(tmp_path, "repro/sim/fake.py", src,
                            rule_ids=["RP001"])
        baseline = {f.fingerprint(): "" for f in first.findings}
        second = lint_source(tmp_path, "repro/sim/fake.py", drifted,
                             rule_ids=["RP001"], baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == 1

    def test_baseline_roundtrip(self, tmp_path):
        src = "import time\ndef f():\n    return time.time()\n"
        report = lint_source(tmp_path, "repro/sim/fake.py", src,
                             rule_ids=["RP001"])
        path = tmp_path / "baseline.json"
        write_baseline(path, report.findings, {})
        loaded = load_baseline(path)
        assert set(loaded) == {f.fingerprint() for f in report.findings}
        assert all(j == "TODO: justify" for j in loaded.values())

    def test_tree_is_clean(self):
        """The acceptance criterion: zero non-baselined findings."""
        report = lint_package()
        assert report.findings == []

    def test_committed_baseline_is_valid_json(self):
        payload = json.loads(default_baseline_path().read_text())
        assert payload["version"] == 1
        for entry in payload["findings"]:
            assert entry.get("justification", "").strip() not in (
                "", "TODO: justify"
            ), f"baseline entry without justification: {entry}"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        from repro.cli import main

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["checked_files"] > 50

    def test_lint_rule_selection(self, capsys):
        from repro.cli import main

        assert main(["lint", "--rule", "RP001", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["RP001"]

    def test_lint_output_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "lint.json"
        assert main(["lint", "--output", str(out)]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["clean"] is True

    def test_injected_violation_fails_the_gate(self, tmp_path, capsys,
                                               monkeypatch):
        """End-to-end CI-gate property: a fresh violation => exit 1."""
        import shutil

        from repro.cli import main

        root = default_source_root()
        fake_root = tmp_path / "src"
        shutil.copytree(root / "repro", fake_root / "repro")
        bad = fake_root / "repro" / "sim" / "injected.py"
        bad.write_text("import time\nT0 = time.time()\n")
        import repro.analysis.engine as engine_mod

        monkeypatch.setattr(engine_mod, "default_source_root",
                            lambda: fake_root)
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "RP001" in out and "injected.py" in out
