"""Lock-primitive semantics across every mechanism.

Mutual exclusion is checked *inside* the simulated programs: a guard flag is
set while a core is in its critical section, so any double-grant fails the
run immediately rather than corrupting a counter silently.
"""

import pytest

from repro.core import api
from repro.sim.program import Compute

from repro.testing import ALL_MECHANISMS, build_system


def run_lock_workload(system, lock, ops_per_core, cs_instructions=10):
    """All cores hammer one lock; returns (counter, max_concurrency)."""
    state = {"counter": 0, "inside": 0, "max_inside": 0}

    def worker():
        for _ in range(ops_per_core):
            yield api.lock_acquire(lock)
            state["inside"] += 1
            state["max_inside"] = max(state["max_inside"], state["inside"])
            state["counter"] += 1
            yield Compute(cs_instructions)
            state["inside"] -= 1
            yield api.lock_release(lock)

    system.run_programs({c.core_id: worker() for c in system.cores})
    return state


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
class TestLockAcrossMechanisms:
    def test_mutual_exclusion_and_no_lost_updates(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        lock = system.create_syncvar(name="L")
        state = run_lock_workload(system, lock, ops_per_core=8)
        assert state["max_inside"] == 1, "two cores inside the critical section"
        assert state["counter"] == 8 * len(system.cores)

    def test_many_independent_locks(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        locks = [system.create_syncvar() for _ in range(6)]
        counters = [0] * len(locks)

        def worker(core_id):
            for i in range(6):
                idx = (core_id + i) % len(locks)
                yield api.lock_acquire(locks[idx])
                counters[idx] += 1
                yield api.lock_release(locks[idx])

        system.run_programs(
            {c.core_id: worker(c.core_id) for c in system.cores}
        )
        assert sum(counters) == 6 * len(system.cores)

    def test_remote_master_lock(self, tiny_config, mechanism):
        """Variable homed in unit 1; cores of unit 0 must still synchronize."""
        system = build_system(tiny_config, mechanism)
        lock = system.create_syncvar(unit=1)
        state = run_lock_workload(system, lock, ops_per_core=5)
        assert state["max_inside"] == 1
        assert state["counter"] == 5 * len(system.cores)


class TestSynCronLockInternals:
    def test_st_entries_released_after_quiescence(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        lock = system.create_syncvar()
        run_lock_workload(system, lock, ops_per_core=4)
        for se in system.mechanism.ses:
            assert se.st.occupied == 0
            assert se.counters.total_active == 0
            assert len(se.store) == 0

    def test_hierarchy_aggregates_global_traffic(self, quad_config):
        """SynCron must send far fewer inter-unit messages than flat."""
        results = {}
        for mech in ("syncron", "syncron_flat"):
            system = build_system(quad_config, mech)
            lock = system.create_syncvar(unit=0)
            run_lock_workload(system, lock, ops_per_core=6)
            results[mech] = system.stats.sync_messages_global
        assert results["syncron"] < results["syncron_flat"]

    def test_local_se_serves_local_requests_without_master(self, quad_config):
        """Back-to-back local requests reuse control (Sec. 3.2): the number
        of global messages is far below one per acquire."""
        system = build_system(quad_config, "syncron")
        lock = system.create_syncvar(unit=0)
        # Only cores of unit 3 compete: their SE takes control once per burst.
        cores = system.cores_in_unit(3)
        state = {"counter": 0}

        def worker():
            for _ in range(10):
                yield api.lock_acquire(lock)
                state["counter"] += 1
                yield api.lock_release(lock)

        system.run_programs({c.core_id: worker() for c in cores})
        assert state["counter"] == 10 * len(cores)
        acquires = 10 * len(cores)
        assert system.stats.sync_messages_global < acquires

    def test_grant_wakes_exactly_the_pending_core(self, tiny_config):
        system = build_system(tiny_config, "syncron")
        lock = system.create_syncvar()
        order = []

        def worker(core_id):
            yield api.lock_acquire(lock)
            order.append(core_id)
            yield Compute(50)
            yield api.lock_release(lock)

        system.run_programs({c.core_id: worker(c.core_id) for c in system.cores})
        assert sorted(order) == [c.core_id for c in system.cores]

    def test_release_of_unowned_lock_raises(self, tiny_config):
        from repro.core.protocol import ProtocolError

        system = build_system(tiny_config, "syncron")
        lock = system.create_syncvar(unit=0)

        def bad():
            yield api.lock_acquire(lock)
            yield api.lock_release(lock)

        def stray():
            yield Compute(5000)
            yield api.lock_release(lock)  # never acquired

        with pytest.raises(ProtocolError):
            system.run_programs({0: bad(), 1: stray()})


class TestLockFairness:
    def test_fairness_threshold_bounds_local_streak(self, quad_config):
        """With the Sec. 4.4.2 counter, a unit cannot monopolize the lock."""
        grants = {"with": [], "without": []}
        for label, threshold in (("without", 0), ("with", 2)):
            config = quad_config.with_(fairness_threshold=threshold)
            system = build_system(config, "syncron")
            lock = system.create_syncvar(unit=0)
            order = []

            def worker(core):
                for _ in range(6):
                    yield api.lock_acquire(lock)
                    order.append(core.unit_id)
                    yield Compute(5)
                    yield api.lock_release(lock)

            system.run_programs(
                {c.core_id: worker(c) for c in system.cores}
            )
            # longest run of consecutive grants to the same unit
            longest = current = 1
            for a, b in zip(order, order[1:]):
                current = current + 1 if a == b else 1
                longest = max(longest, current)
            grants[label] = longest
        assert grants["with"] <= grants["without"]
        assert grants["with"] <= 2 + 1  # threshold + the in-flight grant
