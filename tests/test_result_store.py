"""Content-addressed result store: backends, leases, concurrency, crashes.

The multi-process tests here pin the PR's core guarantees: concurrent
writers on one shared-volume store never lose or tear an entry (the first
durable write wins and later writers verify bit-identity), and a worker
killed mid-claim only delays its specs until the lease expires — a
survivor reclaims and completes them with a result set identical to the
single-worker run.
"""

import hashlib
import json
import multiprocessing
import os
import time

import pytest

from repro.cli import main
from repro.harness import runner as runner_mod
from repro.harness.runner import drain, run_specs
from repro.harness.specs import CACHE_FORMAT_VERSION, RunSpec
from repro.harness.store import (
    LeaseBoard,
    MemoryStore,
    ShardedDirStore,
    SharedVolumeStore,
    StoreError,
    StoreIntegrityError,
    open_store,
    payload_digest,
)


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _body(value: int) -> dict:
    return {"kind": "row", "result": {"cycles": value}, "spec": f"row({value})"}


def _specs(mechs=("central", "syncron", "ideal")):
    return [
        RunSpec.make("primitive", mech,
                     args={"primitive": "lock", "interval": 100, "rounds": 3})
        for mech in mechs
    ]


# ----------------------------------------------------------------------
# Backend contract (every backend behaves identically at the API level)
# ----------------------------------------------------------------------
@pytest.fixture(params=["memory", "dir", "shared"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    cls = ShardedDirStore if request.param == "dir" else SharedVolumeStore
    return cls(tmp_path / "store")


class TestStoreContract:
    def test_roundtrip_and_contains(self, store):
        key = _key("a")
        assert store.get(key) is None
        record = store.put(key, _body(7))
        assert record["result"] == {"cycles": 7}
        assert record["version"] == CACHE_FORMAT_VERSION
        assert store.get(key)["result"] == {"cycles": 7}
        assert key in store and _key("b") not in store
        assert list(store.keys()) == [key]
        assert len(store) == 1

    def test_first_durable_write_wins_identical(self, store):
        key = _key("a")
        first = store.put(key, _body(7))
        again = store.put(key, _body(7))  # duplicate completion
        assert again == first

    def test_duplicate_completion_must_be_bit_identical(self, store):
        key = _key("a")
        store.put(key, _body(7))
        with pytest.raises(StoreIntegrityError):
            store.put(key, _body(8))
        # the winner survives the attempted divergent write
        assert store.get(key)["result"] == {"cycles": 7}

    def test_discard_then_put_new_content(self, store):
        key = _key("a")
        store.put(key, _body(7))
        store.discard(key)
        assert store.get(key) is None
        assert store.put(key, _body(8))["result"] == {"cycles": 8}

    def test_bad_keys_rejected(self, store):
        for bad in ("", "short", "../../evil", "ZZ" * 32, 7):
            with pytest.raises(StoreError):
                store.get(bad)

    def test_verify_clean_store(self, store):
        store.put(_key("a"), _body(1))
        store.put(_key("b"), _body(2))
        report = store.verify()
        assert report["ok"] == 2 and report["corrupt"] == []


# ----------------------------------------------------------------------
# Sharded-directory specifics: layout, quarantine, verify, gc
# ----------------------------------------------------------------------
class TestShardedDir:
    def test_hash_prefix_fanout(self, tmp_path):
        store = ShardedDirStore(tmp_path)
        key = _key("a")
        store.put(key, _body(1))
        path = store.path_for(key)
        assert path.exists()
        assert path.parent.name == key[:2]
        assert json.loads(path.read_text())["digest"]

    def test_corrupt_entry_quarantined_not_lost(self, tmp_path):
        store = ShardedDirStore(tmp_path)
        key = _key("a")
        store.put(key, _body(1))
        path = store.path_for(key)
        path.write_text("{torn")
        fresh = ShardedDirStore(tmp_path)
        assert fresh.get(key) is None
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [path.name]
        assert quarantined[0].read_text() == "{torn"

    def test_tampered_payload_fails_the_rehash(self, tmp_path):
        store = ShardedDirStore(tmp_path)
        key = _key("a")
        store.put(key, _body(1))
        path = store.path_for(key)
        record = json.loads(path.read_text())
        record["result"]["cycles"] = 999  # digest now lies
        path.write_text(json.dumps(record))
        report = ShardedDirStore(tmp_path).verify()
        assert report["corrupt"] == [key]
        assert not path.exists()  # quarantined

    def test_gc_drops_stale_version_entries(self, tmp_path):
        store = ShardedDirStore(tmp_path)
        old_key, new_key = _key("old"), _key("new")
        store.put(old_key, _body(1))
        store.put(new_key, _body(2))
        path = store.path_for(old_key)
        record = json.loads(path.read_text())
        record["version"] = CACHE_FORMAT_VERSION - 1
        path.write_text(json.dumps(record))
        fresh = ShardedDirStore(tmp_path)
        assert fresh.get(old_key) is None  # stale, but kept on disk
        assert path.exists()
        report = fresh.gc()
        assert report["stale_removed"] == 1
        assert not path.exists()
        assert fresh.get(new_key) is not None

    def test_gc_reaps_abandoned_tmp_files(self, tmp_path):
        store = ShardedDirStore(tmp_path)
        store.put(_key("a"), _body(1))
        shard = store.path_for(_key("a")).parent
        orphan = shard / ".tmp-dead"
        orphan.write_text("partial")
        old = time.time() - 2 * ShardedDirStore.TMP_MAX_AGE_SECONDS
        os.utime(orphan, (old, old))
        fresh_tmp = shard / ".tmp-live"
        fresh_tmp.write_text("inflight")
        report = store.gc()
        assert report["tmp_removed"] == 1
        assert not orphan.exists() and fresh_tmp.exists()

    def test_stats_shape(self, tmp_path):
        store = SharedVolumeStore(tmp_path)
        for tag in ("a", "b", "c"):
            store.put(_key(tag), _body(1))
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["backend"] == "shared"
        assert stats["bytes"] > 0
        assert 1 <= stats["shards"] <= 3
        assert stats["quarantined"] == 0 and stats["leases"] == 0


# ----------------------------------------------------------------------
# Legacy results.jsonl migration
# ----------------------------------------------------------------------
def _legacy_line(key: str, value: int) -> str:
    return json.dumps({"version": CACHE_FORMAT_VERSION, "key": key,
                       **_body(value)}, sort_keys=True)


class TestLegacyMigration:
    def test_open_ingests_and_renames(self, tmp_path):
        legacy = tmp_path / "results.jsonl"
        legacy.write_text(
            _legacy_line(_key("a"), 1) + "\n"
            + "not json\n"
            + _legacy_line(_key("b"), 2) + "\n"
            + json.dumps({"version": 999, "key": _key("c"), **_body(3)}) + "\n"
        )
        store = ShardedDirStore(tmp_path)
        assert store.migrated == 2  # the garbage and wrong-version lines skip
        assert store.get(_key("a"))["result"] == {"cycles": 1}
        assert store.get(_key("b"))["result"] == {"cycles": 2}
        assert not legacy.exists()
        assert (tmp_path / "results.jsonl.migrated").exists()
        # reopening is a no-op
        assert ShardedDirStore(tmp_path).migrated == 0

    def test_explicit_source_via_cli(self, tmp_path, capsys):
        source = tmp_path / "old.jsonl"
        source.write_text(_legacy_line(_key("a"), 5) + "\n")
        code = main(["cache", "migrate",
                     "--cache-dir", str(tmp_path / "store"),
                     "--source", str(source), "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ingested"] == 1 and report["entries"] == 1
        assert not source.exists()  # renamed .migrated


# ----------------------------------------------------------------------
# Lease board protocol
# ----------------------------------------------------------------------
class TestLeaseBoard:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=30)
        key = _key("a")
        lease = board.claim(key, "w1")
        assert lease.generation == 1 and not lease.reclaimed
        assert board.claim(key, "w2") is None
        assert board.active() == 1
        board.release(key)
        assert board.active() == 0
        assert board.claim(key, "w2").generation == 1

    def test_expired_lease_is_reclaimed_next_generation(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=0.05)
        key = _key("a")
        board.claim(key, "crashy")
        time.sleep(0.06)
        lease = LeaseBoard(tmp_path, ttl=30).claim(key, "survivor")
        assert lease is not None
        assert lease.generation == 2 and lease.reclaimed

    def test_sweep_removes_only_expired(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=0.01)
        board.claim(_key("dead"), "w")
        LeaseBoard(tmp_path, ttl=60).claim(_key("live"), "w")
        time.sleep(0.02)
        assert board.sweep() == 1
        assert board.active() == 1

    def test_independent_keys_do_not_interfere(self, tmp_path):
        board = LeaseBoard(tmp_path, ttl=30)
        assert board.claim(_key("a"), "w1") is not None
        assert board.claim(_key("b"), "w2") is not None


# ----------------------------------------------------------------------
# open_store / url parsing
# ----------------------------------------------------------------------
class TestOpenStore:
    def test_schemes(self, tmp_path):
        assert isinstance(open_store("memory:"), MemoryStore)
        assert isinstance(open_store(f"dir:{tmp_path}"), ShardedDirStore)        # noqa: E501
        shared = open_store(f"shared:{tmp_path}")
        assert isinstance(shared, SharedVolumeStore)
        assert open_store(shared.url()).root == shared.root

    def test_bare_path_is_a_dir_store(self, tmp_path):
        store = open_store(str(tmp_path))
        assert isinstance(store, ShardedDirStore)
        assert store.root == tmp_path

    def test_errors(self):
        with pytest.raises(StoreError):
            open_store("kafka:broker")
        with pytest.raises(StoreError):
            open_store()
        with pytest.raises(StoreError):
            open_store("dir:")


# ----------------------------------------------------------------------
# Concurrent writers (satellite: no lost or torn entries)
# ----------------------------------------------------------------------
def _writer_proc(root, items, barrier):
    store = SharedVolumeStore(root, migrate_legacy=False)
    barrier.wait()
    for key, body in items:
        store.put(key, body)


class TestConcurrentWriters:
    def test_two_processes_same_and_different_keys(self, tmp_path):
        root = tmp_path / "store"
        shared_keys = [_key(f"shared{i}") for i in range(4)]
        own_a = [_key(f"a{i}") for i in range(3)]
        own_b = [_key(f"b{i}") for i in range(3)]
        # contended keys get IDENTICAL bodies (deterministic simulation);
        # private keys get distinct ones.
        items_a = [(k, _body(100 + i)) for i, k in enumerate(shared_keys)]
        items_a += [(k, _body(i)) for i, k in enumerate(own_a)]
        items_b = [(k, _body(100 + i)) for i, k in enumerate(shared_keys)]
        items_b += [(k, _body(50 + i)) for i, k in enumerate(own_b)]

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [ctx.Process(target=_writer_proc, args=(root, items, barrier))
                 for items in (items_a, items_b)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0

        store = SharedVolumeStore(root)
        all_keys = shared_keys + own_a + own_b
        assert sorted(store.keys()) == sorted(all_keys)
        # no torn entries: every file re-hashes clean
        report = store.verify()
        assert report["ok"] == len(all_keys) and report["corrupt"] == []
        # winners are bit-identical to what both writers produced
        for i, key in enumerate(shared_keys):
            assert store.get(key)["result"] == {"cycles": 100 + i}
        # no abandoned temp files
        leftovers = [p for shard in (root / "objects").iterdir()
                     for p in shard.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []


# ----------------------------------------------------------------------
# Crash recovery (satellite: kill a worker mid-claim, survivors finish)
# ----------------------------------------------------------------------
def _claim_then_hang(root, key, ttl, claimed):
    board = LeaseBoard(root, ttl=ttl)
    assert board.claim(key, "crashy") is not None
    claimed.set()
    time.sleep(120)  # killed long before this returns


class TestCrashRecovery:
    def test_killed_workers_claims_are_reclaimed(self, tmp_path):
        specs = _specs()
        baseline = run_specs(specs)  # plain single-worker run

        root = tmp_path / "store"
        url = f"shared:{root}"
        victim_key = specs[0].cache_key()
        ctx = multiprocessing.get_context("fork")
        claimed = ctx.Event()
        proc = ctx.Process(target=_claim_then_hang,
                           args=(root, victim_key, 0.6, claimed))
        proc.start()
        assert claimed.wait(timeout=30)
        proc.kill()  # dies holding a live lease on specs[0]
        proc.join(timeout=30)

        runner_mod.STATS.reset()
        start = time.time()
        results = run_specs(specs, cache=True, store=url,
                            worker_id="survivor", lease_ttl=0.6)
        assert results == baseline
        # every spec ran exactly once, and the dead worker's lease was
        # taken over (not waited on forever, not double-run)
        assert runner_mod.STATS.executed == len(specs)
        assert runner_mod.STATS.reclaimed == 1
        assert time.time() - start < 30

    def test_drain_completes_work_already_leased_to_nobody(self, tmp_path):
        # expired leases left by a dead worker on EVERY key: one survivor
        # still finishes the whole matrix.
        specs = _specs(("central", "syncron"))
        root = tmp_path / "store"
        store = SharedVolumeStore(root)
        dead = LeaseBoard(root, ttl=0.01)
        work = {spec.cache_key(): spec for spec in specs}
        for key in work:
            dead.claim(key, "crashy")
        time.sleep(0.02)
        counters = drain(store, LeaseBoard(root, ttl=30), work, "survivor")
        assert counters["executed"] == len(specs)
        assert counters["reclaimed"] == len(specs)
        assert sorted(store.keys()) == sorted(work)


# ----------------------------------------------------------------------
# Exactly-once multi-worker drains through run_specs
# ----------------------------------------------------------------------
class TestMultiWorkerDrain:
    def test_three_workers_bit_identical_and_exactly_once(self, tmp_path):
        specs = _specs()
        baseline = run_specs(specs)
        url = f"shared:{tmp_path / 'store'}"
        runner_mod.STATS.reset()
        cold = run_specs(specs, workers=3, cache=True, store=url)
        assert cold == baseline
        assert runner_mod.STATS.executed == len(specs)  # exactly once
        runner_mod.STATS.reset()
        warm = run_specs(specs, workers=3, cache=True, store=url)
        assert warm == baseline
        assert runner_mod.STATS.executed == 0  # zero simulations
        assert runner_mod.STATS.cache_hits == len(specs)

    def test_worker_id_alone_coordinates_through_the_store(self, tmp_path):
        # two sequential "hosts" with worker ids: the second simulates 0
        specs = _specs(("central", "syncron"))
        url = f"shared:{tmp_path / 'store'}"
        runner_mod.STATS.reset()
        first = run_specs(specs, cache=True, store=url, worker_id="host1")
        assert runner_mod.STATS.executed == len(specs)
        runner_mod.STATS.reset()
        second = run_specs(specs, cache=True, store=url, worker_id="host2")
        assert runner_mod.STATS.executed == 0
        assert first == second

    def test_memory_store_parallel_runs_copy_back(self):
        # a memory store can't coordinate processes; workers drain through
        # an ephemeral dir and the parent copies results back into it.
        specs = _specs(("central", "syncron"))
        runner_mod.STATS.reset()
        results = run_specs(specs, workers=2, cache=True, store="memory:")
        assert runner_mod.STATS.executed == len(specs)
        assert [m.mechanism for m in results] == ["central", "syncron"]


# ----------------------------------------------------------------------
# The `repro cache` CLI surface
# ----------------------------------------------------------------------
class TestCacheCli:
    def _populate(self, tmp_path):
        spec = _specs(("syncron",))[0]
        run_specs([spec], cache=True, cache_dir=str(tmp_path))
        return spec

    def test_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 1 and report["backend"] == "dir"

    def test_verify_flags_corruption(self, tmp_path, capsys):
        spec = self._populate(tmp_path)
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        path = ShardedDirStore(tmp_path).path_for(spec.cache_key())
        path.write_text("{broken")
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        assert "quarantined" in capsys.readouterr().err

    def test_gc_reports_counts(self, tmp_path, capsys):
        spec = self._populate(tmp_path)
        path = ShardedDirStore(tmp_path).path_for(spec.cache_key())
        record = json.loads(path.read_text())
        record["version"] = CACHE_FORMAT_VERSION + 1
        record["digest"] = payload_digest(record)
        path.write_text(json.dumps(record))
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["stale_removed"] == 1

    def test_unknown_scheme_fails_cleanly(self, capsys):
        assert main(["cache", "stats", "--store", "kafka:x"]) == 2
        assert "unknown store scheme" in capsys.readouterr().err
