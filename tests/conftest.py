"""Shared fixtures: small, fast system configurations for unit tests."""

import os

import pytest

# Tests always run at the smallest experiment scale, regardless of the
# environment the developer exports for benchmarks.
os.environ["REPRO_SCALE"] = "small"

from repro.sim.config import SystemConfig, ndp_2_5d  # noqa: E402
from repro.sim.system import NDPSystem  # noqa: E402


@pytest.fixture
def tiny_config() -> SystemConfig:
    """2 units x 3 clients: enough topology for hierarchy, fast to run."""
    return ndp_2_5d(num_units=2, cores_per_unit=4, client_cores_per_unit=3)


@pytest.fixture
def quad_config() -> SystemConfig:
    """4 units x 4 clients: the full-topology variant for protocol tests."""
    return ndp_2_5d(num_units=4, cores_per_unit=5, client_cores_per_unit=4)


@pytest.fixture
def tiny_system(tiny_config) -> NDPSystem:
    return NDPSystem(tiny_config, mechanism="syncron")


def build_system(config: SystemConfig, mechanism: str = "syncron") -> NDPSystem:
    return NDPSystem(config, mechanism=mechanism)


ALL_MECHANISMS = (
    "syncron",
    "syncron_flat",
    "central",
    "hier",
    "ideal",
    "syncron_central_ovrfl",
    "syncron_distrib_ovrfl",
)

#: Sec. 2.2.1 spin-wait baselines.  Kept out of ALL_MECHANISMS because their
#: condition-variable semantics differ deliberately (credits persist instead
#: of POSIX lost signals) — see test_spin_baselines.py for their coverage.
SPIN_MECHANISMS = ("rmw_spin", "bakery")
