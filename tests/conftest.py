"""Shared fixtures: small, fast system configurations for unit tests.

Importable helpers (``build_system``, ``ALL_MECHANISMS``, ...) live in
:mod:`repro.testing` so test modules never import ``conftest`` as a plain
module (pytest's prepend import mode resolves that name against whichever
conftest it saw first — see the note in ``repro/testing.py``).
"""

import pytest

from repro.sim.config import SystemConfig, ndp_2_5d
from repro.sim.system import NDPSystem
from repro.testing import ALL_MECHANISMS, SPIN_MECHANISMS, build_system  # noqa: F401


@pytest.fixture(scope="session", autouse=True)
def _force_small_scale(tmp_path_factory):
    """Tests always run at the smallest experiment scale, regardless of the
    ``REPRO_SCALE`` a developer exports for benchmarks.

    Scoped with a MonkeyPatch context instead of an import-time
    ``os.environ`` write so the setting never leaks out of the test
    session into the invoking shell process.

    ``REPRO_CACHE_DIR`` is routed into a temp directory so any test that
    exercises the sweep runner's cache (directly or through the CLI) never
    writes into the repository or reads a developer's warm cache.
    """
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_SCALE", "small")
        mp.setenv("REPRO_CACHE_DIR",
                  str(tmp_path_factory.mktemp("repro-cache")))
        yield


@pytest.fixture
def tiny_config() -> SystemConfig:
    """2 units x 3 clients: enough topology for hierarchy, fast to run."""
    return ndp_2_5d(num_units=2, cores_per_unit=4, client_cores_per_unit=3)


@pytest.fixture
def quad_config() -> SystemConfig:
    """4 units x 4 clients: the full-topology variant for protocol tests."""
    return ndp_2_5d(num_units=4, cores_per_unit=5, client_cores_per_unit=4)


@pytest.fixture
def tiny_system(tiny_config) -> NDPSystem:
    return NDPSystem(tiny_config, mechanism="syncron")
