"""Tests for the NDP core model, programs, memory system, and NDPSystem."""

import pytest

from repro.core import api
from repro.sim.program import (
    Batch,
    Compute,
    Load,
    Store,
    SyncAsyncOp,
    SyncOp,
    batch,
)
from repro.sim.system import MECHANISM_NAMES, NDPSystem

from repro.testing import ALL_MECHANISMS


class TestProgramOps:
    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_sync_op_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            SyncOp("lock_grab", None)

    def test_async_only_for_release_type(self):
        with pytest.raises(ValueError):
            SyncAsyncOp("lock_acquire", None)

    def test_batch_rejects_sync_ops(self):
        with pytest.raises(TypeError):
            Batch((Compute(1), SyncOp("lock_acquire", None)))

    def test_batch_helper(self):
        b = batch(Load(0), Store(8), Compute(2))
        assert len(b.ops) == 3


class TestCoreExecution:
    def test_compute_advances_time_by_instruction_count(self, tiny_system):
        def program():
            yield Compute(100)

        cycles = tiny_system.run_programs({0: program()})
        assert cycles == 100

    def test_cacheable_load_hits_after_miss(self, tiny_system):
        addr = tiny_system.addrmap.alloc(0, 64)
        times = []

        def program():
            start = tiny_system.sim.now
            yield Load(addr)
            times.append(tiny_system.sim.now - start)
            start = tiny_system.sim.now
            yield Load(addr)
            times.append(tiny_system.sim.now - start)

        tiny_system.run_programs({0: program()})
        assert times[1] < times[0]
        assert times[1] == tiny_system.config.l1_hit_cycles

    def test_uncacheable_never_hits(self, tiny_system):
        addr = tiny_system.addrmap.alloc(0, 64)
        times = []

        def program():
            for _ in range(2):
                start = tiny_system.sim.now
                yield Load(addr, cacheable=False)
                times.append(tiny_system.sim.now - start)

        tiny_system.run_programs({0: program()})
        assert times[1] > tiny_system.config.l1_hit_cycles

    def test_remote_access_is_slower(self, tiny_system):
        local = tiny_system.addrmap.alloc(0, 64)
        remote = tiny_system.addrmap.alloc(1, 64)
        times = {}

        def program():
            start = tiny_system.sim.now
            yield Load(local, cacheable=False)
            times["local"] = tiny_system.sim.now - start
            start = tiny_system.sim.now
            yield Load(remote, cacheable=False)
            times["remote"] = tiny_system.sim.now - start

        tiny_system.run_programs({0: program()})  # core 0 lives in unit 0
        assert times["remote"] > times["local"] + tiny_system.config.link_latency_cycles

    def test_batch_matches_sequential_time_roughly(self, tiny_config):
        from repro.testing import build_system

        addr_ops = [(i * 64) for i in range(8)]
        sys_a = build_system(tiny_config)
        sys_b = build_system(tiny_config)

        def prog_seq():
            for a in addr_ops:
                yield Load(a)
            yield Compute(10)

        def prog_batch():
            yield Batch(tuple([Load(a) for a in addr_ops] + [Compute(10)]))

        t_seq = sys_a.run_programs({0: prog_seq()})
        t_batch = sys_b.run_programs({0: prog_batch()})
        assert abs(t_seq - t_batch) <= 8  # per-op rounding differences only

    def test_instructions_retired(self, tiny_system):
        def program():
            yield Compute(10)
            yield Load(0)
            yield Store(64)

        tiny_system.run_programs({0: program()})
        assert tiny_system.cores[0].instructions_retired == 12

    def test_unknown_op_raises(self, tiny_system):
        def program():
            yield "nonsense"

        with pytest.raises(TypeError):
            tiny_system.run_programs({0: program()})

    def test_core_cannot_run_two_programs(self, tiny_system):
        def forever():
            yield Compute(10)

        tiny_system.cores[0].run_program(forever())
        with pytest.raises(RuntimeError):
            tiny_system.cores[0].run_program(forever())


class TestNDPSystem:
    def test_mechanism_registry_covers_all_names(self, tiny_config):
        for name in MECHANISM_NAMES:
            system = NDPSystem(tiny_config, mechanism=name)
            assert system.mechanism_name == name

    def test_unknown_mechanism_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            NDPSystem(tiny_config, mechanism="magic")

    def test_core_topology(self, quad_config):
        system = NDPSystem(quad_config)
        assert system.num_cores == 16
        assert len(system.cores_in_unit(2)) == 4
        local_ids = [c.local_id for c in system.cores_in_unit(2)]
        assert local_ids == [0, 1, 2, 3]

    def test_create_syncvar_round_robins_units(self, tiny_system):
        v1 = tiny_system.create_syncvar()
        v2 = tiny_system.create_syncvar()
        assert {v1.unit, v2.unit} == {0, 1}

    def test_create_syncvar_explicit_unit(self, tiny_system):
        var = tiny_system.create_syncvar(unit=1)
        assert var.unit == 1
        assert tiny_system.addrmap.unit_of(var.addr) == 1

    def test_deadlock_detection(self, tiny_system):
        lock = tiny_system.create_syncvar()

        def stuck():
            yield api.lock_acquire(lock)
            yield api.lock_acquire(lock)  # self-deadlock

        with pytest.raises(RuntimeError, match="deadlock"):
            tiny_system.run_programs({0: stuck()})

    def test_empty_program_set(self, tiny_system):
        assert tiny_system.run_programs({}) == 0

    def test_makespan_is_max_of_finish_times(self, tiny_system):
        def short():
            yield Compute(10)

        def long():
            yield Compute(500)

        cycles = tiny_system.run_programs({0: short(), 1: long()})
        assert cycles == 500

    def test_destroy_syncvar_clears_state(self, tiny_system):
        lock = tiny_system.create_syncvar()

        def program():
            yield api.lock_acquire(lock)
            yield api.lock_release(lock)

        tiny_system.run_programs({0: program()})
        tiny_system.destroy_syncvar(lock)
        for se in tiny_system.mechanism.ses:
            assert se.st.lookup(lock.addr) is None
