"""Degraded fabrics: fault injection, rerouting, graceful degradation.

Covers the :mod:`repro.sim.topo.faults` fault plans (determinism,
connectivity guard, CLI spec grammars), the
:class:`~repro.sim.network.Interconnect`'s live fault handling (reroute /
repair / downtime accounting / loud partition failure), heterogeneous
``link_profile`` timing, the adaptive routing policies, the new
``SystemStats`` degradation counters, cache-key soundness of every new
config field, and the ``degradation`` experiment.
"""

import math

import pytest

from repro import NDPSystem, api
from repro.harness.experiments import degradation
from repro.harness.specs import RunSpec
from repro.sim import Compute
from repro.sim.clock import core_cycles_from_ns
from repro.sim.config import SystemConfig, ndp_2_5d
from repro.sim.network import Interconnect
from repro.sim.stats import SystemStats
from repro.sim.topo import (
    FabricPartitionedError,
    FaultPlan,
    build_topology,
    parse_fault_spec,
    parse_link_profile,
    unreachable_pairs,
)

RING4 = dict(num_units=4, cores_per_unit=4, client_cores_per_unit=3,
             topology="ring")


def run_lock(cfg, mechanism="syncron", rounds=4):
    """A small cross-unit lock workload; returns (system, makespan)."""
    system = NDPSystem(cfg, mechanism=mechanism)
    lock = system.create_syncvar(name="fault_lock")

    def worker():
        for _ in range(rounds):
            yield api.lock_acquire(lock)
            yield Compute(20)
            yield api.lock_release(lock)

    cycles = system.run_programs({c.core_id: worker() for c in system.cores})
    return system, cycles


class TestGracefulDegradation:
    def test_pristine_run_keeps_every_fault_counter_zero(self):
        system, _ = run_lock(ndp_2_5d(**RING4))
        assert system.stats.reroutes == 0
        assert system.stats.detour_bit_hops == 0
        assert system.stats.failed_link_cycles == 0
        assert not system.fault_plan

    def test_severed_ring_completes_by_rerouting(self):
        """The headline scenario: a permanent mid-run link fault on a ring
        slows the run down but never hangs or corrupts it."""
        _, pristine = run_lock(ndp_2_5d(**RING4))
        system, cycles = run_lock(
            ndp_2_5d(**RING4, fault_links=((0, 1, 50, 0),)))
        assert cycles > pristine
        assert system.stats.reroutes > 0
        assert system.stats.detour_bit_hops > 0
        # the permanent fault is charged up to the end of the run.
        assert system.stats.failed_link_cycles >= cycles - 50

    def test_uniform_link_profile_is_bit_identical(self):
        """A profile listing every channel at the global values is the
        same machine; timing and traffic must not move by a cycle."""
        base = ndp_2_5d(**RING4)
        channels = build_topology(base).channels()
        uniform = ndp_2_5d(**RING4, link_profile=tuple(
            (src, dst, base.link_bandwidth_gbps, base.link_latency_ns)
            for src, dst in channels
        ))
        ref_sys, ref_cycles = run_lock(base)
        sys_, cycles = run_lock(uniform)
        assert cycles == ref_cycles
        assert sys_.stats.link_bit_hops == ref_sys.stats.link_bit_hops
        assert sys_.stats.bytes_across_units == ref_sys.stats.bytes_across_units
        assert sys_.stats.reroutes == 0

    def test_explicit_partition_fails_loudly(self):
        # cutting all four channels touching unit 1 isolates it; the run
        # must raise at injection time, never hang.
        cut = ((0, 1, 100, 0), (1, 0, 100, 0), (1, 2, 100, 0), (2, 1, 100, 0))
        with pytest.raises(FabricPartitionedError):
            run_lock(ndp_2_5d(**RING4, fault_links=cut))


class TestInterconnectFaults:
    def make(self, **overrides):
        cfg = ndp_2_5d(num_units=8, topology="ring", **overrides)
        stats = SystemStats()
        return Interconnect(cfg, stats), stats

    def test_reroute_then_repair_restores_the_pristine_route(self):
        inter, _ = self.make()
        assert inter.remote_hops(0, 1) == 1
        inter.fail_link((0, 1), 0)
        assert inter.remote_hops(0, 1) == 7  # all the way around
        inter.repair_link((0, 1), 500)
        assert inter.remote_hops(0, 1) == 1

    def test_reroutes_counted_once_per_pair_per_fault_epoch(self):
        inter, stats = self.make()
        inter.fail_link((0, 1), 0)
        inter.remote_latency(0, 1, 10, 64)
        inter.remote_latency(0, 1, 20, 64)
        assert stats.reroutes == 1  # memoized within the epoch
        inter.fail_link((4, 5), 100)  # new epoch: routes re-resolve
        inter.remote_latency(0, 1, 110, 64)
        assert stats.reroutes == 2

    def test_partition_raises_at_injection_time(self):
        inter, _ = self.make()
        inter.fail_link((0, 1), 0)
        inter.fail_link((1, 0), 0)  # unit 1 still talks via (1, 2)/(2, 1)
        with pytest.raises(FabricPartitionedError):
            inter.fail_link((1, 2), 0)  # now unit 1 cannot send at all

    def test_transient_downtime_accounting(self):
        inter, stats = self.make()
        inter.fail_link((0, 1), 100)
        inter.repair_link((0, 1), 700)
        assert stats.failed_link_cycles == 600
        inter.fail_link((2, 3), 1000)
        inter.finalize_faults(1500)
        assert stats.failed_link_cycles == 1100
        inter.finalize_faults(1500)  # idempotent at a fixed instant
        assert stats.failed_link_cycles == 1100

    def test_dead_unit_forwards_nothing_but_stays_an_endpoint(self):
        cfg = ndp_2_5d(num_units=9, topology="mesh2d")  # 3x3, center = 4
        inter = Interconnect(cfg, SystemStats())
        assert inter.remote_hops(3, 5) == 2  # dimension-order through 4
        inter.fail_unit(4, 0)
        assert inter.remote_hops(3, 5) == 4  # around the center
        assert inter.remote_hops(3, 4) == 1  # still a valid destination

    def test_detour_bits_are_charged_on_top_of_route_bits(self):
        inter, stats = self.make()
        inter.fail_link((0, 1), 0)
        inter.remote_latency(0, 1, 10, 64)
        # 7-hop detour vs 1-hop pristine: 6 extra hops of 64 bytes.
        assert stats.detour_bit_hops == 64 * 8 * 6
        assert stats.link_bit_hops == 64 * 8 * 7


class TestLinkProfile:
    def test_profile_shifts_timing_by_the_predicted_delta(self):
        cfg = ndp_2_5d(num_units=4)  # all_to_all: (0, 1) is private
        base = Interconnect(cfg, SystemStats()).remote_latency(0, 1, 0, 64)
        slow = ndp_2_5d(num_units=4, link_profile=((0, 1, 1.28, 80.0),))
        profiled = Interconnect(slow, SystemStats()).remote_latency(0, 1, 0, 64)
        expected = (
            math.ceil(64 / (1.28 / 2.5)) - math.ceil(64 / cfg.link_bytes_per_cycle)
            + core_cycles_from_ns(80.0) - cfg.link_latency_cycles
        )
        assert profiled - base == expected

    def test_partial_override_keeps_the_global_for_none(self):
        cfg = ndp_2_5d(num_units=4, link_profile=((0, 1, None, 80.0),))
        inter = Interconnect(cfg, SystemStats())
        bpc, latency = inter.link_parameters((0, 1))
        assert bpc == cfg.link_bytes_per_cycle
        assert latency == core_cycles_from_ns(80.0)
        # unlisted channels use the globals entirely.
        assert inter.link_parameters((2, 3)) == (
            cfg.link_bytes_per_cycle, cfg.link_latency_cycles)

    def test_profile_for_a_nonexistent_channel_is_rejected(self):
        # the ring has no direct (0, 2) channel.
        cfg = ndp_2_5d(**RING4, link_profile=((0, 2, 6.4, None),))
        with pytest.raises(ValueError):
            Interconnect(cfg, SystemStats())

    def test_validate_rejects_malformed_profiles(self):
        with pytest.raises(ValueError):
            ndp_2_5d(link_profile=((0, 1, 0.0, None),)).validate()  # gbps<=0
        with pytest.raises(ValueError):
            ndp_2_5d(link_profile=((0, 1, None, None),)).validate()  # no-op
        with pytest.raises(ValueError):
            ndp_2_5d(link_profile=((0, 0, 6.4, None),)).validate()  # loop


class TestRoutingPolicies:
    def test_degraded_policy_routes_around_a_slow_link(self):
        # 2x2 mesh; (0, 1) is crippled: 3 fast hops beat 1 slow hop.
        slow = ((0, 1, 0.05, 4000.0),)
        static = Interconnect(
            ndp_2_5d(num_units=4, topology="mesh2d", link_profile=slow),
            SystemStats())
        degraded = Interconnect(
            ndp_2_5d(num_units=4, topology="mesh2d", link_profile=slow,
                     routing_policy="degraded"),
            SystemStats())
        assert static.remote_hops(0, 1) == 1
        assert degraded.remote_hops(0, 1) == 3
        assert (degraded.remote_latency(0, 1, 0, 64)
                < static.remote_latency(0, 1, 0, 64))

    def test_load_aware_policy_avoids_the_congested_route(self):
        # 0 -> 3 on a 2x2 mesh has two minimal routes; pre-loading the
        # dimension-order one (via channel (0, 1)) drives load_aware to
        # the other, so it beats static under the same congestion.
        def congested(policy):
            cfg = ndp_2_5d(num_units=4, topology="mesh2d",
                           routing_policy=policy)
            inter = Interconnect(cfg, SystemStats())
            inter.remote_latency(0, 1, 0, 100_000)
            return inter.remote_latency(0, 3, 0, 64)

        assert congested("load_aware") < congested("static")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ndp_2_5d(routing_policy="magic").validate()
        with pytest.raises(ValueError):
            Interconnect(ndp_2_5d(routing_policy="magic"), SystemStats())


class TestFaultPlan:
    def test_rate_derived_plan_is_deterministic(self):
        cfg = ndp_2_5d(num_units=8, topology="ring",
                       fault_link_rate=0.25, fault_seed=7)
        topo = build_topology(cfg)
        assert (FaultPlan.from_config(cfg, topo)
                == FaultPlan.from_config(cfg, topo))
        other = ndp_2_5d(num_units=8, topology="ring",
                         fault_link_rate=0.25, fault_seed=8)
        assert (FaultPlan.from_config(other, topo)
                != FaultPlan.from_config(cfg, topo))

    def test_default_config_yields_the_empty_plan(self):
        cfg = ndp_2_5d()
        assert not FaultPlan.from_config(cfg, build_topology(cfg))

    def test_connectivity_guard_never_partitions(self):
        # 90% severity on a ring would cut it apart; the guard drops the
        # partitioning draws and reports them in `skipped`.
        cfg = ndp_2_5d(num_units=8, topology="ring", fault_link_rate=0.9,
                       fault_seed=3)
        topo = build_topology(cfg)
        plan = FaultPlan.from_config(cfg, topo)
        assert plan.skipped
        dead = {e.target for e in plan.events
                if e.kind == "link" and e.permanent}
        assert dead  # the fabric still degrades...
        assert not unreachable_pairs(topo, dead, set())  # ...but never splits

    def test_guarded_plan_survives_a_full_run(self):
        system, cycles = run_lock(ndp_2_5d(
            **RING4, fault_link_rate=0.5, fault_seed=2,
            fault_window_cycles=2_000))
        assert cycles > 0
        assert system.interconnect.dead_channels  # faults really landed

    def test_explicit_fault_on_a_nonexistent_channel_rejected(self):
        cfg = ndp_2_5d(**RING4, fault_links=((0, 2, 10, 0),))
        with pytest.raises(ValueError):
            FaultPlan.from_config(cfg, build_topology(cfg))


class TestSpecGrammars:
    def test_fault_spec_clauses(self):
        assert parse_fault_spec("0>1@100") == {
            "fault_links": ((0, 1, 100, 0),)}
        assert parse_fault_spec("2-3@50+500") == {
            "fault_links": ((2, 3, 50, 500), (3, 2, 50, 500))}
        assert parse_fault_spec("unit:1@200") == {
            "fault_units": ((1, 200, 0),)}
        assert parse_fault_spec(
            "rate=0.1, transient=0.05, seed=7, window=1000, repair=200"
        ) == {
            "fault_link_rate": 0.1, "fault_transient_rate": 0.05,
            "fault_seed": 7, "fault_window_cycles": 1000,
            "fault_repair_cycles": 200,
        }

    @pytest.mark.parametrize("bad", ["", "0>@", "1>2", "rate=x", "unit:@5"])
    def test_fault_spec_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_link_profile_clauses(self):
        assert parse_link_profile("0>1=6.4:80") == ((0, 1, 6.4, 80.0),)
        assert parse_link_profile("0-1=12.8") == (
            (0, 1, 12.8, None), (1, 0, 12.8, None))
        assert parse_link_profile("1>0=:100") == ((1, 0, None, 100.0),)

    @pytest.mark.parametrize("bad", ["", "0>1=", "0=1", "a>b=1"])
    def test_link_profile_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_link_profile(bad)


class TestConfigAndCacheKeys:
    def test_three_tuple_fault_links_normalize_to_permanent(self):
        cfg = ndp_2_5d(fault_links=((0, 1, 100),))
        assert cfg.fault_links == ((0, 1, 100, 0),)
        assert SystemConfig.from_dict(cfg.as_dict()) == cfg

    def test_round_trip_preserves_every_fault_field(self):
        cfg = ndp_2_5d(
            link_profile=((0, 1, 6.4, 80.0), (1, 0, None, 100.0)),
            routing_policy="load_aware", fault_seed=9,
            fault_links=((0, 1, 100, 0),), fault_units=((2, 50, 400),),
            fault_link_rate=0.1, fault_transient_rate=0.05,
            fault_window_cycles=5000, fault_repair_cycles=250,
        )
        cfg.validate()
        assert SystemConfig.from_dict(cfg.as_dict()) == cfg
        assert cfg.stable_hash() != ndp_2_5d().stable_hash()

    def test_aliases_hit_the_same_cache_entry(self):
        base = dict(args={"primitive": "lock", "interval": 100, "rounds": 2})
        assert (RunSpec.make("primitive", "syncron", **base,
                             overrides={"fault_rate": 0.1}).cache_key()
                == RunSpec.make("primitive", "syncron", **base,
                                overrides={"fault_link_rate": 0.1}).cache_key())
        assert (RunSpec.make("primitive", "syncron", **base,
                             overrides={"policy": "load_aware"}).cache_key()
                == RunSpec.make("primitive", "syncron", **base,
                                overrides={"routing_policy": "load_aware"}
                                ).cache_key())

    def test_fault_fields_split_the_cache_key(self):
        base = dict(args={"primitive": "lock", "interval": 100, "rounds": 2})
        plain = RunSpec.make("primitive", "syncron", **base)
        faulted = RunSpec.make(
            "primitive", "syncron", **base,
            overrides={"fault_links": ((0, 1, 100, 0),)})
        reseeded = RunSpec.make(
            "primitive", "syncron", **base,
            overrides={"fault_link_rate": 0.1, "fault_seed": 5})
        assert len({plain.cache_key(), faulted.cache_key(),
                    reseeded.cache_key()}) == 3


class TestDegradationExperiment:
    def test_smoke_rows_and_counters(self):
        rows = degradation(topologies=("ring",), severities=(0.25,),
                           mechanisms=("central", "syncron"), num_units=4,
                           rounds=2, window=4_000)
        assert [r["severity"] for r in rows] == [0.0, 0.25]
        healthy, degraded = rows
        for mech in ("central", "syncron"):
            assert healthy[mech] == 1.0
            assert healthy[f"{mech}_reroutes"] == 0
            assert degraded[mech] >= 1.0
            assert degraded[f"{mech}_reroutes"] > 0
            assert degraded[f"{mech}_detour_bit_hops"] > 0
        assert degraded["links_failed"] > 0
        assert degraded["hop_inflation"] > 1.0
