"""The interconnect-topology subsystem: routing, contention, accounting.

Covers the :mod:`repro.sim.topo` fabrics (shortest paths, deterministic
tie-breaking, shape resolution), the routed
:class:`~repro.sim.network.Interconnect` (all-to-all equivalence with the
hand-composed pre-topology pipeline, multi-hop distance, shared-channel
contention, byte conservation), :class:`~repro.sim.network.Link` edge
cases, the config threading (validate / round-trip / cache keys), the
``topo_sensitivity`` experiment, and the ``sweep --dry-run`` CLI.
"""

import math
import warnings

import pytest

from repro.cli import main as cli_main
from repro.harness.experiments import topo_sensitivity
from repro.harness.runner import probe_specs
from repro.harness.specs import RunSpec
from repro.sim.config import SystemConfig, ndp_2_5d, ndp_mesh
from repro.sim.network import Crossbar, Interconnect, Link
from repro.sim.stats import SystemStats
from repro.sim.topo import (
    TOPOLOGIES,
    AllToAll,
    Mesh2D,
    Ring,
    Torus2D,
    build_topology,
    mesh_shape,
)


def assert_route_chains(topo, src, dst):
    """A route must be a contiguous channel chain from src to dst."""
    route = topo.route(src, dst)
    if src == dst:
        assert route == ()
        return route
    assert route[0][0] == src
    assert route[-1][1] == dst
    for (_, arrive), (depart, _) in zip(route, route[1:]):
        assert arrive == depart
    return route


class TestMeshShape:
    def test_auto_shape_is_squarest_factorization(self):
        assert mesh_shape(16) == (4, 4)
        assert mesh_shape(12) == (3, 4)
        assert mesh_shape(2) == (1, 2)

    def test_prime_unit_counts_warn_and_degrade_to_a_line(self):
        with pytest.warns(RuntimeWarning, match="prime"):
            assert mesh_shape(7) == (1, 7)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # composites stay silent
            assert mesh_shape(12) == (3, 4)
            assert mesh_shape(2) == (1, 2)  # trivially a line, no surprise

    def test_explicit_rows(self):
        assert mesh_shape(12, rows=2) == (2, 6)

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError):
            mesh_shape(12, rows=5)
        with pytest.raises(ValueError):
            mesh_shape(12, rows=-1)


class TestRouting:
    def test_all_to_all_every_pair_is_one_private_hop(self):
        topo = AllToAll(6)
        for src in range(6):
            for dst in range(6):
                if src != dst:
                    assert topo.route(src, dst) == ((src, dst),)
        assert topo.diameter() == 1
        assert len(topo.channels()) == 6 * 5

    def test_ring_takes_the_shorter_direction(self):
        topo = Ring(8)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 7) == 1          # wraps backward
        assert topo.hops(2, 6) == 4
        assert topo.diameter() == 4
        for src in range(8):
            for dst in range(8):
                assert_route_chains(topo, src, dst)

    def test_ring_tie_breaks_clockwise(self):
        # 0 -> 4 on an 8-ring is 4 hops either way; increasing ids win.
        assert Ring(8).route(0, 4)[0] == (0, 1)

    def test_mesh_hops_are_manhattan_distance(self):
        topo = Mesh2D(16)  # 4x4
        assert (topo.rows, topo.cols) == (4, 4)
        for src in range(16):
            r0, c0 = divmod(src, 4)
            for dst in range(16):
                r1, c1 = divmod(dst, 4)
                assert topo.hops(src, dst) == abs(r0 - r1) + abs(c0 - c1)
                assert_route_chains(topo, src, dst)

    def test_mesh_routes_x_before_y(self):
        # dimension-order: 0 (0,0) -> 15 (3,3) walks the top row first.
        route = Mesh2D(16).route(0, 15)
        assert route[:3] == ((0, 1), (1, 2), (2, 3))
        assert route[3:] == ((3, 7), (7, 11), (11, 15))

    def test_torus_wraps_and_never_beats_itself(self):
        torus, mesh = Torus2D(16), Mesh2D(16)
        assert torus.hops(0, 15) == 2  # one wrap per dimension
        for src in range(16):
            for dst in range(16):
                assert torus.hops(src, dst) <= mesh.hops(src, dst)
                assert_route_chains(torus, src, dst)
        assert torus.diameter() == 4

    def test_routes_are_memoized_and_validated(self):
        topo = Ring(4)
        assert topo.route(0, 2) is topo.route(0, 2)
        with pytest.raises(ValueError):
            topo.route(0, 4)
        with pytest.raises(ValueError):
            topo.route(-1, 0)

    def test_route_bounds_checked_even_when_the_table_is_warm(self):
        # out-of-range pairs are never cached, so the check fires on every
        # call — including after routing_table() populated all valid pairs.
        topo = Ring(4)
        topo.routing_table()
        for src, dst in ((0, 4), (4, 0), (-1, 2), (2, -1)):
            with pytest.raises(ValueError):
                topo.route(src, dst)

    def test_mean_hops_orders_the_fabrics(self):
        n = 16
        a2a, ring = AllToAll(n), Ring(n)
        torus, mesh = Torus2D(n), Mesh2D(n)
        assert a2a.mean_hops() == 1.0
        assert a2a.mean_hops() <= torus.mean_hops() <= mesh.mean_hops()
        assert mesh.mean_hops() < ring.mean_hops()


class TestConfigThreading:
    def test_default_config_uses_all_to_all(self):
        cfg = ndp_2_5d()
        assert cfg.topology == "all_to_all"
        assert isinstance(build_topology(cfg), AllToAll)

    def test_build_topology_honours_field_and_shape(self):
        cfg = ndp_2_5d(num_units=12, topology="mesh2d", topo_rows=2)
        topo = build_topology(cfg)
        assert isinstance(topo, Mesh2D)
        assert (topo.rows, topo.cols) == (2, 6)

    def test_ndp_mesh_preset_is_a_4x4_grid(self):
        cfg = ndp_mesh()
        cfg.validate()
        topo = build_topology(cfg)
        assert isinstance(topo, Mesh2D)
        assert (topo.rows, topo.cols) == (4, 4)

    def test_validate_rejects_bad_topology_fields(self):
        with pytest.raises(ValueError):
            ndp_2_5d(topology="hypercube").validate()
        with pytest.raises(ValueError):
            ndp_2_5d(num_units=4, topology="mesh2d", topo_rows=3).validate()
        with pytest.raises(ValueError):
            ndp_2_5d(topo_rows=-1).validate()

    def test_round_trip_preserves_topology(self):
        cfg = ndp_2_5d(topology="torus2d", topo_rows=2, num_units=8)
        again = SystemConfig.from_dict(cfg.as_dict())
        assert again == cfg

    def test_topo_rows_is_normalized_away_on_non_grid_fabrics(self):
        # rows mean nothing to a ring; the two configs describe the same
        # machine and must share a hash (and therefore a cache entry).
        assert (ndp_2_5d(topology="ring", topo_rows=4).stable_hash()
                == ndp_2_5d(topology="ring").stable_hash())
        # on a grid they change the shape, so they must split the hash.
        assert (ndp_2_5d(num_units=12, topology="mesh2d",
                         topo_rows=2).stable_hash()
                != ndp_2_5d(num_units=12, topology="mesh2d").stable_hash())

    def test_stable_hash_and_cache_key_cover_topology(self):
        assert (ndp_2_5d(topology="ring").stable_hash()
                != ndp_2_5d().stable_hash())
        base = dict(args={"primitive": "lock", "interval": 100, "rounds": 2})
        plain = RunSpec.make("primitive", "syncron", **base)
        ring = RunSpec.make("primitive", "syncron", **base,
                            overrides={"topology": "ring"})
        aliased = RunSpec.make("primitive", "syncron", **base,
                               overrides={"topo": "ring"})
        assert ring.cache_key() != plain.cache_key()
        assert aliased.cache_key() == ring.cache_key()


class TestRoutedInterconnect:
    def test_all_to_all_matches_hand_composed_pipeline(self):
        """Routed default == the pre-topology xbar -> link -> xbar model."""
        cfg = ndp_2_5d()
        routed = Interconnect(cfg, SystemStats())
        ref_stats = SystemStats()
        src_xbar = Crossbar(cfg, ref_stats, 0)
        dst_xbar = Crossbar(cfg, ref_stats, 1)
        link = Link(cfg, ref_stats)
        for now in (0, 10, 480, 481, 2000):
            first = src_xbar.traverse(now, 64)
            second = link.reserve(now + first, 64)
            third = dst_xbar.traverse(now + first + second, 64)
            assert routed.remote_latency(0, 1, now, 64) == first + second + third

    def test_distance_costs_cycles_on_a_ring(self):
        cfg = ndp_2_5d(num_units=8, topology="ring")
        near = Interconnect(cfg, SystemStats()).remote_latency(0, 1, 0, 64)
        far = Interconnect(cfg, SystemStats()).remote_latency(0, 4, 0, 64)
        # 4 hops pay ~4x the propagation+serialization of 1 hop.
        assert far > near + 2 * cfg.link_latency_cycles

    def test_shared_channel_contention_emerges(self):
        # ring routes 0->2 and 1->2 share the physical channel (1, 2).
        cfg = ndp_2_5d(num_units=4, topology="ring")
        quiet = Interconnect(cfg, SystemStats()).remote_latency(1, 2, 0, 6400)
        contended = Interconnect(cfg, SystemStats())
        contended.remote_latency(0, 2, 0, 6400)
        assert contended.remote_latency(1, 2, 0, 6400) > quiet

    def test_all_to_all_never_contends_across_pairs(self):
        # disjoint pairs keep private channels: same latency with or
        # without background traffic between other units.
        cfg = ndp_2_5d(num_units=4)
        quiet = Interconnect(cfg, SystemStats()).remote_latency(2, 3, 0, 6400)
        busy = Interconnect(cfg, SystemStats())
        busy.remote_latency(0, 1, 0, 6400)
        assert busy.remote_latency(2, 3, 0, 6400) == quiet

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_byte_conservation_under_every_topology(self, topology):
        """Bytes injected == bytes accounted, however many links a route has."""
        cfg = ndp_2_5d(num_units=8, topology=topology)
        stats = SystemStats()
        inter = Interconnect(cfg, stats)
        transfers = [(0, 5, 64), (3, 3, 32), (7, 1, 128), (2, 6, 64),
                     (4, 4, 8), (6, 0, 256), (5, 2, 0)]
        local_bytes = remote_bytes = expected_link_bits = 0
        for now, (src, dst, nbytes) in enumerate(transfers):
            inter.transfer_latency(src, dst, now * 1000, nbytes)
            if src == dst:
                local_bytes += nbytes
            else:
                remote_bytes += nbytes
                expected_link_bits += nbytes * 8 * inter.remote_hops(src, dst)
        assert stats.bytes_across_units == remote_bytes
        # a remote transfer crosses exactly two crossbars (src + dst).
        assert stats.bytes_inside_units == local_bytes + 2 * remote_bytes
        assert stats.link_bit_hops == expected_link_bits
        assert stats.link_bit_hops >= stats.bytes_across_units * 8

    def test_remote_hops_reports_route_length(self):
        cfg = ndp_2_5d(num_units=8, topology="ring")
        inter = Interconnect(cfg, SystemStats())
        assert inter.remote_hops(0, 4) == 4
        assert inter.remote_hops(0, 0) == 0


class TestLinkEdgeCases:
    def test_zero_byte_transfer_still_occupies_one_cycle(self):
        cfg = ndp_2_5d()
        stats = SystemStats()
        link = Link(cfg, stats)
        assert link.transfer(0, 0) == 1 + cfg.link_latency_cycles
        assert stats.bytes_across_units == 0
        assert stats.link_bit_hops == 0
        # ... and that cycle delays a back-to-back packet by exactly 1.
        assert link.reserve(0, 0) == 2 + cfg.link_latency_cycles

    def test_back_to_back_reservations_serialize_exactly(self):
        cfg = ndp_2_5d()
        link = Link(cfg, SystemStats())
        serialization = int(math.ceil(6400 / cfg.link_bytes_per_cycle))
        assert link.reserve(0, 6400) == serialization + cfg.link_latency_cycles
        assert link.reserve(0, 6400) == 2 * serialization + cfg.link_latency_cycles

    def test_idle_gap_earns_no_transfer_credit(self):
        # occupancy never runs backwards: after a long idle gap the next
        # packet pays exactly one serialization + latency, and back-to-back
        # packets at that same instant queue behind it — the stale
        # _next_free must not hand out negative waiting time.
        cfg = ndp_2_5d()
        link = Link(cfg, SystemStats())
        serialization = int(math.ceil(64 / cfg.link_bytes_per_cycle))
        exact = serialization + cfg.link_latency_cycles
        assert link.reserve(0, 64) == exact
        assert link.reserve(10_000, 64) == exact
        assert link.reserve(10_000, 64) == serialization + exact

    def test_reserve_is_timing_only(self):
        stats = SystemStats()
        Link(ndp_2_5d(), stats).reserve(0, 64)
        assert stats.bytes_across_units == 0
        assert stats.link_bit_hops == 0


class TestCrossbarHops:
    def test_negative_hop_count_rejected(self):
        xbar = Crossbar(ndp_2_5d(), SystemStats(), 0)
        with pytest.raises(ValueError):
            xbar.traverse(0, 64, hops=-1)

    def test_zero_hops_pays_only_arbitration(self):
        cfg = ndp_2_5d()
        xbar = Crossbar(cfg, SystemStats(), 0)
        assert xbar.traverse(0, 1, hops=0) == cfg.arbiter_cycles


class TestTopoSensitivity:
    def test_all_to_all_is_the_unit_baseline(self):
        rows = topo_sensitivity(unit_steps=(2, 4), mechanisms=("syncron",),
                                rounds=2)
        assert len(rows) == 2 * 4  # unit steps x fabrics
        by_key = {(r["units"], r["topology"]): r for r in rows}
        for units in (2, 4):
            assert by_key[(units, "all_to_all")]["syncron"] == 1.0
        # at 4 units the ring already pays multi-hop routes.
        assert by_key[(4, "ring")]["syncron"] >= 1.0

    def test_routed_fabrics_are_no_faster_at_16_units(self):
        rows = topo_sensitivity(topologies=("all_to_all", "ring", "mesh2d"),
                                unit_steps=(16,), mechanisms=("syncron",),
                                rounds=1)
        by_topo = {r["topology"]: r for r in rows}
        assert by_topo["ring"]["syncron"] >= 1.0
        assert by_topo["mesh2d"]["syncron"] >= 1.0
        assert (by_topo["ring"]["syncron_cycles"]
                >= by_topo["all_to_all"]["syncron_cycles"])


class TestSweepDryRun:
    ARGS = ["sweep", "--primitives", "lock", "--mechanisms", "syncron",
            "--rounds", "1", "--interval", "120",
            "--vary", "topology=all_to_all,ring"]

    def test_probe_specs_classifies_without_executing(self):
        spec = RunSpec.make("primitive", "syncron",
                            args={"primitive": "lock", "interval": 130,
                                  "rounds": 1})
        assert probe_specs([spec, spec], cache=False) == [
            "simulate", "duplicate",
        ]

    def test_dry_run_prints_matrix_and_counts(self, capsys):
        assert cli_main([*self.ARGS, "--dry-run"]) == 0
        out = capsys.readouterr()
        assert "topology=ring" in out.out
        assert "2 runs: 0 cached, 2 to simulate, 0 deduplicated" in out.err

    def test_dry_run_sees_warm_cache(self, capsys):
        assert cli_main(self.ARGS) == 0  # real run populates the cache
        capsys.readouterr()
        assert cli_main([*self.ARGS, "--dry-run"]) == 0
        out = capsys.readouterr()
        assert "2 runs: 2 cached, 0 to simulate" in out.err
