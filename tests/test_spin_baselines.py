"""The Sec. 2.2.1 spin-wait baselines: remote atomics and Lamport bakery.

Semantics tests mirror the cross-mechanism suites (mutual exclusion, barrier
phases, bounded semaphores, producer/consumer condvars) and are joined by
cost-model tests for the claims the baselines exist to demonstrate: spinning
hammers the variable's home unit (traffic, retries) and the bakery scan cost
grows with the core count.
"""

import pytest

from repro.core import api
from repro.sim.config import ndp_2_5d
from repro.sim.program import Compute
from repro.sim.system import NDPSystem
from repro.sync.bakery import BakeryMechanism, _BakeryLockState
from repro.sync.remote_atomics import (
    GEN_SHIFT,
    RemoteAtomicsMechanism,
    WRITER_BIT,
    pack,
    unpack,
)

from repro.testing import SPIN_MECHANISMS, build_system


# ----------------------------------------------------------------------
# Packed-word helpers
# ----------------------------------------------------------------------
class TestPackedWords:
    def test_pack_unpack_roundtrip(self):
        for generation, count in [(0, 0), (1, 5), (123, 456), (7, (1 << 32) - 1)]:
            assert unpack(pack(generation, count)) == (generation, count)

    def test_pack_rejects_oversized_count(self):
        with pytest.raises(ValueError):
            pack(0, 1 << 32)

    def test_fetch_add_rollover_resets_count_and_bumps_generation(self):
        """The last barrier arriver's single fetch_add must atomically
        reset the count and advance the generation."""
        expected = 6
        word = pack(3, expected - 1)
        word += 1  # this arrival fills the barrier
        word += (1 << GEN_SHIFT) - expected
        assert unpack(word) == (4, 0)

    def test_writer_bit_does_not_collide_with_reader_counts(self):
        assert WRITER_BIT > (1 << 32)
        word = WRITER_BIT
        assert word & WRITER_BIT
        assert (word + 5) - WRITER_BIT == 5


# ----------------------------------------------------------------------
# Primitive semantics on both baselines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mechanism", SPIN_MECHANISMS)
class TestSpinPrimitives:
    def test_lock_mutual_exclusion(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        lock = system.create_syncvar(name="L")
        state = {"counter": 0, "inside": 0, "max_inside": 0}

        def worker():
            for _ in range(6):
                yield api.lock_acquire(lock)
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"], state["inside"])
                state["counter"] += 1
                yield Compute(10)
                state["inside"] -= 1
                yield api.lock_release(lock)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert state["max_inside"] == 1
        assert state["counter"] == 6 * len(system.cores)

    def test_lock_on_remote_unit(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        lock = system.create_syncvar(unit=1)
        state = {"counter": 0}

        def worker():
            for _ in range(4):
                yield api.lock_acquire(lock)
                state["counter"] += 1
                yield api.lock_release(lock)

        system.run_programs(
            {c.core_id: worker() for c in system.cores_in_unit(0)}
        )
        assert state["counter"] == 4 * len(system.cores_in_unit(0))

    def test_barrier_separates_phases(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        bar = system.create_syncvar(name="B")
        n = len(system.cores)
        phase_counts = [0, 0, 0]
        errors = []

        def worker():
            for phase in range(3):
                # Before arriving, earlier phases must be fully populated.
                for earlier in range(phase):
                    if phase_counts[earlier] != n:
                        errors.append((phase, earlier, phase_counts[earlier]))
                phase_counts[phase] += 1
                yield api.barrier_wait_across_units(bar, n)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert not errors
        assert phase_counts == [n, n, n]

    def test_barrier_is_reusable(self, tiny_config, mechanism):
        """Generation-based barriers must not deadlock across many phases."""
        system = build_system(tiny_config, mechanism)
        bar = system.create_syncvar(name="B")
        n = len(system.cores)

        def worker():
            for _ in range(8):
                yield api.barrier_wait_across_units(bar, n)

        makespan = system.run_programs(
            {c.core_id: worker() for c in system.cores}
        )
        assert makespan > 0

    def test_semaphore_bounds_concurrency(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        sem = system.create_syncvar(name="S")
        K = 2
        state = {"inside": 0, "max_inside": 0, "completed": 0}

        def worker():
            for _ in range(3):
                yield api.sem_wait(sem, K)
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"], state["inside"])
                yield Compute(30)
                state["inside"] -= 1
                state["completed"] += 1
                yield api.sem_post(sem)

        system.run_programs({c.core_id: worker() for c in system.cores})
        assert state["max_inside"] <= K
        assert state["completed"] == 3 * len(system.cores)

    def test_condvar_producer_consumer(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        cond = system.create_syncvar(name="C")
        lock = system.create_syncvar(name="CL")
        box = {"ready": 0, "consumed": 0}
        cores = system.cores
        half = len(cores) // 2
        rounds = 3

        def producer():
            for _ in range(rounds):
                yield api.lock_acquire(lock)
                box["ready"] += 1
                yield api.lock_release(lock)
                yield api.cond_signal(cond)
                yield Compute(40)

        def consumer():
            for _ in range(rounds):
                yield api.lock_acquire(lock)
                while box["ready"] == 0:
                    yield api.cond_wait(cond, lock)
                box["ready"] -= 1
                box["consumed"] += 1
                yield api.lock_release(lock)

        programs = {}
        for i, core in enumerate(cores):
            programs[core.core_id] = producer() if i < half else consumer()
        system.run_programs(programs)
        assert box["consumed"] == rounds * (len(cores) - half)
        assert box["ready"] >= 0

    def test_condvar_broadcast_wakes_everyone(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        cond = system.create_syncvar(name="C")
        lock = system.create_syncvar(name="CL")
        flags = {"go": False, "woken": 0}
        cores = system.cores
        waiters = cores[:-1]

        def waiter():
            yield api.lock_acquire(lock)
            while not flags["go"]:
                yield api.cond_wait(cond, lock)
            flags["woken"] += 1
            yield api.lock_release(lock)

        def broadcaster():
            yield Compute(500)
            yield api.lock_acquire(lock)
            flags["go"] = True
            yield api.lock_release(lock)
            yield api.cond_broadcast(cond)

        programs = {c.core_id: waiter() for c in waiters}
        programs[cores[-1].core_id] = broadcaster()
        system.run_programs(programs)
        assert flags["woken"] == len(waiters)

    def test_signal_credit_persists(self, tiny_config, mechanism):
        """The documented semantic difference: a signal posted before any
        waiter arrives is consumed by the next waiter (counting credits),
        unlike the POSIX lost signal."""
        system = build_system(tiny_config, mechanism)
        cond = system.create_syncvar(name="C")
        lock = system.create_syncvar(name="CL")
        done = {"woken": False}
        cores = system.cores

        def early_signaller():
            yield api.cond_signal(cond)

        def late_waiter():
            yield Compute(2000)
            yield api.lock_acquire(lock)
            yield api.cond_wait(cond, lock)
            done["woken"] = True
            yield api.lock_release(lock)

        system.run_programs(
            {
                cores[0].core_id: early_signaller(),
                cores[1].core_id: late_waiter(),
            }
        )
        assert done["woken"]

    def test_variable_destroy_clears_state(self, tiny_config, mechanism):
        system = build_system(tiny_config, mechanism)
        lock = system.create_syncvar(name="L")

        def worker():
            yield api.lock_acquire(lock)
            yield api.lock_release(lock)

        system.run_programs({system.cores[0].core_id: worker()})
        system.destroy_syncvar(lock)
        mech = system.mechanism
        if isinstance(mech, RemoteAtomicsMechanism):
            assert mech.field_value(lock, "lock") == 0
        else:
            assert mech.lock_owner(lock) is None


# ----------------------------------------------------------------------
# Cost-model claims (why these baselines exist)
# ----------------------------------------------------------------------
class TestSpinCostModel:
    def _contended_run(self, mechanism: str, ops: int = 6):
        config = ndp_2_5d(num_units=2, cores_per_unit=4, client_cores_per_unit=3)
        system = NDPSystem(config, mechanism=mechanism)
        lock = system.create_syncvar(unit=0)
        state = {"counter": 0}

        def worker():
            for _ in range(ops):
                yield api.lock_acquire(lock)
                state["counter"] += 1
                yield Compute(20)
                yield api.lock_release(lock)

        makespan = system.run_programs({c.core_id: worker() for c in system.cores})
        return system, makespan

    def test_spinning_generates_retries_under_contention(self):
        system, _ = self._contended_run("rmw_spin")
        assert system.mechanism.spin_retries > 0
        assert system.stats.extra["spin_retries"] == system.mechanism.spin_retries

    def test_spin_traffic_exceeds_syncron(self):
        """Consecutive rmw retries to the home unit must generate more
        inter-unit messages than SynCron's hierarchical aggregation."""
        spin, _ = self._contended_run("rmw_spin")
        syncron, _ = self._contended_run("syncron")
        assert spin.stats.sync_messages_global > syncron.stats.sync_messages_global

    def test_syncron_faster_than_spin_under_contention(self):
        _, spin_time = self._contended_run("rmw_spin")
        _, syncron_time = self._contended_run("syncron")
        assert syncron_time < spin_time

    def test_bakery_scan_cost_scales_with_core_count(self):
        """O(N) loads per attempt: doubling the clients should more than
        double the synchronization memory accesses per acquire."""
        per_acquire = {}
        for clients in (2, 4):
            config = ndp_2_5d(
                num_units=1, cores_per_unit=clients + 1,
                client_cores_per_unit=clients,
            )
            system = NDPSystem(config, mechanism="bakery")
            lock = system.create_syncvar(unit=0)

            def worker():
                for _ in range(4):
                    yield api.lock_acquire(lock)
                    yield api.lock_release(lock)

            system.run_programs({c.core_id: worker() for c in system.cores})
            acquires = 4 * clients
            per_acquire[clients] = system.stats.sync_memory_accesses / acquires
        assert per_acquire[4] > 1.5 * per_acquire[2]

    def test_bakery_slower_than_remote_atomics(self):
        _, bakery_time = self._contended_run("bakery", ops=3)
        _, spin_time = self._contended_run("rmw_spin", ops=3)
        assert bakery_time > spin_time

    def test_atomic_unit_serializes_visits(self):
        system, _ = self._contended_run("rmw_spin")
        mech = system.mechanism
        total_visits = sum(u.visits for u in mech.atomic_units)
        # Every lock acquire needs >=1 visit; the contended home unit sees
        # nearly all of them.
        assert total_visits >= system.stats.sync_requests_total
        assert mech.atomic_units[0].visits > mech.atomic_units[1].visits

    def test_backoff_config_changes_retry_count(self):
        """Longer backoff means fewer (but longer-spaced) retries."""
        retries = {}
        for backoff in (8, 256):
            config = ndp_2_5d(
                num_units=2, cores_per_unit=4, client_cores_per_unit=3,
                spin_backoff_cycles=backoff,
            )
            system = NDPSystem(config, mechanism="rmw_spin")
            lock = system.create_syncvar(unit=0)

            def worker():
                for _ in range(5):
                    yield api.lock_acquire(lock)
                    yield Compute(20)
                    yield api.lock_release(lock)

            system.run_programs({c.core_id: worker() for c in system.cores})
            retries[backoff] = system.mechanism.spin_retries
        assert retries[256] < retries[8]


# ----------------------------------------------------------------------
# Bakery internals
# ----------------------------------------------------------------------
class TestBakeryLockState:
    def test_fifo_ticket_order(self):
        state = _BakeryLockState()
        t3 = state.take_ticket(3)
        t1 = state.take_ticket(1)
        t2 = state.take_ticket(2)
        assert state.owner == t3 and state.owner_core == 3
        state.release(3)
        assert state.owner == t1 and state.owner_core == 1
        state.release(1)
        assert state.owner == t2 and state.owner_core == 2
        state.release(2)
        assert state.owner is None and state.owner_core is None

    def test_release_by_non_owner_raises(self):
        state = _BakeryLockState()
        state.take_ticket(5)
        with pytest.raises(RuntimeError):
            state.release(7)

    def test_concurrent_acquisitions_by_one_core_grant_once_each(self):
        # One core with several acquisitions in flight (async sem_post plus
        # the next sem_wait): ownership is per ticket, so each acquisition
        # is granted and released exactly once, in FIFO order.
        state = _BakeryLockState()
        a = state.take_ticket(3)
        b = state.take_ticket(3)
        other = state.take_ticket(4)
        assert state.owner == a
        state.release(3)
        assert state.owner == b and state.owner_core == 3
        state.release(3)
        assert state.owner == other and state.owner_core == 4
        with pytest.raises(RuntimeError):
            state.release(3)  # core 3 holds nothing anymore
        state.release(4)
        assert state.owner is None

    def test_scan_rounds_counted(self, tiny_config):
        system = build_system(tiny_config, "bakery")
        lock = system.create_syncvar()

        def worker():
            for _ in range(3):
                yield api.lock_acquire(lock)
                yield Compute(50)
                yield api.lock_release(lock)

        system.run_programs({c.core_id: worker() for c in system.cores})
        mech = system.mechanism
        assert isinstance(mech, BakeryMechanism)
        assert mech.scan_rounds > 0
        assert system.stats.extra["bakery_scans"] == mech.scan_rounds
